//! Compiling one `(spec, backend, seed)` triple into a runnable simulation
//! and executing it.
//!
//! Everything a run consumes derives from the caller's seed through
//! SplitMix64 stream derivation, so each record is a pure function of
//! `(spec, backend, seed)` — the property the parallel sweep runner relies
//! on for deterministic reports.

use adversary::{compile_coalition, majority_capture_probability, sybil_ids, DefendedSampler};
use chord::{
    AdaptiveConfig, ChordConfig, ChordDht, ChordNetwork, ChurnSimulation, FaultPlan,
    LookupOutcomes, MaintenanceBudget, NodeId, RetryPolicy, SloConfig, Watchdog,
};
use keyspace::{KeySpace, Point};
use peer_sampling::{Dht, NetworkSizeEstimator, OracleDht, Sampler, SamplerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ringidx::RingIndex;
use serde::Serialize;
use simnet::churn::{ChurnPhase, ChurnSchedule};
use simnet::rng::derive_seed;
use simnet::SimDuration;
use stats::{divergence, LogHistogram};
use std::collections::BTreeMap;
use telemetry::TraceDump;

use crate::placement::place_index;
use crate::{AdversaryModel, Backend, ChurnModel, DefenseModel, ScenarioSpec};

/// Committee size used for the per-record capture-probability figures:
/// small enough that honest capture probability is printable, large
/// enough that the Chernoff cliff between honest and biased shares is
/// orders of magnitude.
pub const COMMITTEE_SIZE: usize = 15;

/// Independent random streams a run derives from its seed.
mod stream {
    pub const PLACEMENT: u64 = 0;
    pub const CHURN: u64 = 1;
    pub const FAULTS: u64 = 2;
    pub const DRAWS: u64 = 3;
    pub const LATENCY: u64 = 4;
    pub const WATCHDOG: u64 = 5;
    /// Post-outage repair: heal-time rejoins and the maintenance drain
    /// that re-converges the ring after a correlated domain crash.
    pub const REPAIR: u64 = 6;
    /// The async lookup engine's per-request latency streams.
    pub const ENGINE: u64 = 7;
    /// The engine phase's workload (origin/target pairs).
    pub const ENGINE_WORKLOAD: u64 = 8;
}

/// Target draws per watchdog observation window on chord arms. The
/// realized window is `max(DRAW_WINDOW, 5 · live)` so the chi-square
/// drift rule always sees enough per-cell mass to be evaluable; a final
/// partial window is always flushed, so the post-churn ring state is
/// observed at least once per run.
pub const DRAW_WINDOW: u64 = 500;

/// One tail exemplar off the chord hop histogram: which window and
/// log-bucket it came from, and the operation ordinal of the first lookup
/// that landed there. The ordinal matches [`telemetry::LookupTrace`]'s
/// `ordinal` field in a traced replay of the same `(spec, backend,
/// seed)`, so a p99/p999 figure links to a concrete replayable walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TailExemplar {
    /// Watchdog window index the exemplar was captured in.
    pub window: u64,
    /// Inclusive upper edge of the histogram bucket the sample landed in.
    pub bucket_upper: u64,
    /// The recorded value (per-lookup hop count).
    pub value: u64,
    /// Operation ordinal of the exemplar lookup (ids agree between
    /// traced and untraced runs).
    pub trace_id: u64,
}

/// Metrics of one `(spec, backend, seed)` execution.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeedRunRecord {
    /// Backend name (`"oracle"` / `"chord"`).
    pub backend: String,
    /// The seed this record is a pure function of.
    pub seed: u64,
    /// Live peers at sampling time (after churn).
    pub live_peers: u64,
    /// Ring position of the measuring client (the honest observer every
    /// draw routes from).
    pub anchor_point: Point,
    /// Byzantine peers at sampling time.
    pub byzantine_peers: u64,
    /// Draws that returned a peer.
    pub samples_ok: u64,
    /// Draws that errored (routing failure or trial exhaustion).
    pub samples_failed: u64,
    /// Whether the §2 size estimator failed (fell back to the live count).
    pub estimate_failed: bool,
    /// Mean rejection-loop trials per successful draw.
    pub mean_trials: f64,
    /// Mean messages per successful draw.
    pub mean_messages: f64,
    /// Mean latency ticks per successful draw.
    pub mean_latency: f64,
    /// Total-variation distance of the selection histogram from uniform.
    pub tv_from_uniform: f64,
    /// Max/min selection-frequency ratio (`None` when a peer was never
    /// selected, where the ratio is infinite).
    pub max_min_ratio: Option<f64>,
    /// Pearson chi-square p-value against the uniform null.
    pub chi_square_p: f64,
    /// Fraction of live peers that are Byzantine.
    pub byzantine_population_share: f64,
    /// Fraction of successful draws that landed on a Byzantine peer.
    pub byzantine_sample_share: f64,
    /// Probability a [`COMMITTEE_SIZE`]-member committee drawn at the
    /// *measured* Byzantine sample share seats a Byzantine majority.
    pub committee_capture_p: f64,
    /// The honest baseline: the same committee drawn at the Byzantine
    /// *population* share (what a perfectly uniform sampler would risk).
    pub committee_capture_p_uniform: f64,
    /// Defended draws whose quorum round detected disagreement and
    /// redrew (0 without a defense arm) — each one is a blocked attack.
    pub quorum_failures: u64,
    /// Fraction of populated finger entries disagreeing with the ground
    /// truth at sampling time (`1 − finger_accuracy`; 0 on oracle
    /// backends, which have no routing state to go stale).
    pub finger_staleness: f64,
    /// Dirty entries the batched maintenance left unrepaired at sampling
    /// time — the staleness a finite `MaintenanceSpec::Batched` budget
    /// buys its savings with. 0 on oracle backends and under
    /// `MaintenanceSpec::FullRefresh` (the classic path has no dirty
    /// queue to drain).
    pub maintenance_backlog: u64,
    /// Median per-lookup hop count off the chord hop histogram (0 on
    /// oracle backends, which answer in one synthetic step).
    pub hop_p50: u64,
    /// 99th-percentile per-lookup hop count — the tail the paper's
    /// O(log n) bound is about. Log-bucketed (≤ 1/16 relative error,
    /// never under-reported), so it is safe to gate verdicts on.
    pub hop_p99: u64,
    /// 99.9th-percentile per-lookup hop count.
    pub hop_p999: u64,
    /// Median messages per successful draw (both backends; the oracle
    /// charges its synthetic ceil(log2 n) cost here).
    pub draw_msgs_p50: u64,
    /// 99th-percentile messages per successful draw — a defended arm's
    /// redundancy multiplier shows up here, not in the mean.
    pub draw_msgs_p99: u64,
    /// Observation windows the health watchdog closed over the run: one
    /// per maintenance round during churn, then one per
    /// [`DRAW_WINDOW`]-sized draw batch (0 on oracle backends, which
    /// have no overlay to watch).
    pub watchdog_windows: u64,
    /// SLO breach edges the watchdog emitted (each is one rule going
    /// from holding to violated; recoveries are not counted here).
    pub health_breaches: u64,
    /// Window index of the first SLO breach — the time-to-detect figure
    /// for scenarios whose fault is active from window 0. −1 when no
    /// rule ever breached.
    pub time_to_detect: i64,
    /// Windows from first breach to last recovery: 0 when nothing ever
    /// breached, −1 when some rule was still violated at run end
    /// (recovery unconfirmed).
    pub time_to_recover: i64,
    /// Draws attempted while a correlated domain outage was active (0
    /// when the spec has no `domains` structure).
    pub outage_draws: u64,
    /// Draws that succeeded while the outage was active — with retry /
    /// fallback routing on, degraded-but-correct answers count here.
    pub outage_ok: u64,
    /// `outage_ok / outage_draws` (1.0 when no draw ran under an
    /// outage) — the figure the domain-outage verdicts gate on.
    pub outage_success_ratio: f64,
    /// Lookups submitted to the async engine phase (0 when the spec has
    /// no `engine` structure, and on oracle backends).
    pub engine_lookups: u64,
    /// Engine lookups that completed (the phase drains, so this equals
    /// `engine_lookups` unless the ring itself was unanswerable).
    pub engine_completed: u64,
    /// Engine deadlines that fired (each one preempted a late attempt
    /// into the retry tiers, or — with retries off — re-armed and kept
    /// waiting).
    pub engine_timeouts: u64,
    /// Median submit-to-completion age of an engine lookup in simulated
    /// ticks (exact, computed over the completion set, not bucketed).
    pub engine_age_p50: u64,
    /// 99th-percentile engine completion age in ticks.
    pub engine_age_p99: u64,
    /// 99.9th-percentile engine completion age in ticks — the figure
    /// the slow-domain verdicts gate on: a sector that answers late
    /// fails nothing, so only this tail shows the fault.
    pub engine_age_p999: u64,
    /// Engine-phase windows until the watchdog's in-flight-age rule
    /// first breached, counted from the slow-sector fault's onset window
    /// (from the phase's first window when the spec has no slow sector).
    /// −1 when it never breached (healthy arms, or no engine phase).
    pub engine_ttd: i64,
    /// Windows from that first breach to the rule's last recovery: 0
    /// when nothing breached, −1 when still violated at phase end.
    pub engine_ttr: i64,
    /// FNV-1a digest (hex) over the engine's tag-sorted completion
    /// report — byte-identical across replays of the same cell; empty
    /// when the spec has no engine phase.
    pub engine_digest: String,
    /// Every watchdog event, rendered one line each
    /// ([`chord::HealthEvent::render`]): attributed, byte-stable, in
    /// emission order.
    pub health_events: Vec<String>,
    /// Longitudinal gauge columns from the watchdog's window ring, one
    /// entry per observed window per gauge (live, backlog, staleness,
    /// defect_rate, hop_p50, hop_p99, forged_rate, draw_cost). Empty on
    /// oracle backends.
    pub series: BTreeMap<String, Vec<f64>>,
    /// Per-window hop-histogram tail exemplars, in window order (empty on
    /// oracle backends). Captured whether or not tracing is on, so the
    /// trace ids stay valid for a traced replay.
    pub tail_exemplars: Vec<TailExemplar>,
    /// `tail_exemplars.len()` — the numeric column aggregates and diffs
    /// gate on.
    pub exemplar_count: u64,
    /// Span-profiler totals: simulated cost attributed to each lookup /
    /// maintenance phase (`lookup;finger_walk`, `lookup;retry_backoff`,
    /// …), name-sorted. Includes zero rows, so the column set is stable
    /// across arms. Empty on oracle backends.
    pub span_costs: BTreeMap<String, u64>,
    /// FNV-1a digest over every lookup trace recorded during the run
    /// (hex; empty when `telemetry.trace_lookups` is off or the backend
    /// does not route). Two runs of the same `(spec, backend, seed)`
    /// produce the same digest — a cheap cross-machine replay check.
    pub trace_digest: String,
    /// Full counter snapshot from the backend's telemetry recorder
    /// (chord arms; empty on oracle backends, which have no instrumented
    /// substrate). Sorted by name, so report JSON is deterministic.
    pub counters: BTreeMap<String, u64>,
}

/// Runs one scenario under one backend for one seed.
///
/// # Panics
///
/// Panics if the spec fails [`ScenarioSpec::validate`] or names a
/// degenerate simulation (e.g. churn that wipes out the whole overlay).
pub fn run_scenario_seed(spec: &ScenarioSpec, backend: Backend, seed: u64) -> SeedRunRecord {
    run_seed_inner(spec, backend, seed, false).0
}

/// Runs one scenario with lookup tracing forced on, returning the record
/// alongside the flight-recorder dump — the post-mortem entry point e16
/// uses to replay a failing `(spec, backend, seed)` cell.
///
/// The record is identical to [`run_scenario_seed`]'s except for its
/// `trace_digest` field (tracing perturbs nothing else). Oracle backends
/// do not route, so their dump is empty.
///
/// # Panics
///
/// Panics under the same conditions as [`run_scenario_seed`].
pub fn run_scenario_seed_traced(
    spec: &ScenarioSpec,
    backend: Backend,
    seed: u64,
) -> (SeedRunRecord, TraceDump) {
    let (record, dump) = run_seed_inner(spec, backend, seed, true);
    (
        record,
        dump.unwrap_or_else(|| TraceDump::from_recorder(&telemetry::Recorder::new())),
    )
}

fn run_seed_inner(
    spec: &ScenarioSpec,
    backend: Backend,
    seed: u64,
    force_trace: bool,
) -> (SeedRunRecord, Option<TraceDump>) {
    if let Err(problems) = spec.validate() {
        panic!("invalid scenario {:?}: {problems:?}", spec.name);
    }
    let space = KeySpace::full();
    let mut placement_rng = StdRng::seed_from_u64(derive_seed(seed, stream::PLACEMENT));
    // One index-backed membership compilation feeds both backends, so a
    // paired oracle/chord run sees the same initial ring.
    let members = place_index(&spec.placement, space, spec.n_initial, &mut placement_rng);
    match backend {
        Backend::Oracle => (run_oracle(spec, seed, space, members, None), None),
        Backend::StaleOracle { lag_ticks } => (
            run_oracle(spec, seed, space, members, Some(lag_ticks)),
            None,
        ),
        Backend::Chord => run_chord(spec, seed, space, members, force_trace),
    }
}

fn churn_schedule(model: &ChurnModel) -> Option<ChurnSchedule> {
    match model {
        ChurnModel::Static => None,
        ChurnModel::Poisson {
            arrivals_per_1000_ticks,
            mean_lifetime_ticks,
            crash_fraction,
            horizon_ticks,
        } => Some(ChurnSchedule::new(vec![ChurnPhase {
            duration: SimDuration::from_ticks(*horizon_ticks),
            arrivals_per_1000_ticks: *arrivals_per_1000_ticks,
            mean_lifetime: SimDuration::from_ticks(*mean_lifetime_ticks),
            crash_fraction: *crash_fraction,
        }])),
        ChurnModel::Phased { phases } => Some(ChurnSchedule::new(
            phases
                .iter()
                .map(|p| ChurnPhase {
                    duration: SimDuration::from_ticks(p.duration_ticks),
                    arrivals_per_1000_ticks: p.arrivals_per_1000_ticks,
                    mean_lifetime: SimDuration::from_ticks(p.mean_lifetime_ticks),
                    crash_fraction: p.crash_fraction,
                })
                .collect(),
        )),
    }
}

/// Per-draw accumulators shared by both backends.
#[derive(Default)]
struct DrawTally {
    ok: u64,
    failed: u64,
    trials: u64,
    messages: u64,
    latency: u64,
}

impl DrawTally {
    fn record(&mut self, trials: u32, cost: peer_sampling::Cost) {
        self.ok += 1;
        self.trials += trials as u64;
        self.messages += cost.messages;
        self.latency += cost.latency;
    }

    fn mean(total: u64, count: u64) -> f64 {
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

/// Builds the sampler configuration from the spec: deployment mode
/// estimates `n` through the backend itself; oracle-knowledge mode
/// inflates the true count.
fn build_sampler_config<D: Dht>(
    spec: &ScenarioSpec,
    dht: &D,
    origin: D::Peer,
    live: usize,
) -> (SamplerConfig, bool) {
    let mut estimate_failed = false;
    let config = if spec.workload.estimate_n {
        match NetworkSizeEstimator::default().estimate(dht, origin) {
            Ok(est) => est.to_sampler_config(),
            Err(_) => {
                estimate_failed = true;
                SamplerConfig::new(live as u64)
            }
        }
    } else {
        let inflated = (live as f64 * spec.sampler.n_upper_inflation).round() as u64;
        SamplerConfig::new(inflated.max(1))
    };
    (
        config.with_max_trials(spec.sampler.max_trials),
        estimate_failed,
    )
}

fn uniformity(counts: &[u64]) -> (f64, Option<f64>, f64) {
    let tv = divergence::tv_from_uniform(counts);
    let ratio = divergence::max_min_ratio(counts);
    let ratio = ratio.is_finite().then_some(ratio);
    let chi_p = stats::ChiSquare::uniform(counts)
        .map(|t| t.p_value())
        .unwrap_or(f64::NAN);
    (tv, ratio, chi_p)
}

fn run_oracle(
    spec: &ScenarioSpec,
    seed: u64,
    space: KeySpace,
    mut members: RingIndex<u64>,
    lag_ticks: Option<u64>,
) -> SeedRunRecord {
    // Churn against the oracle mutates the membership set only: the
    // oracle's "routing" is always perfectly fresh, so Oracle-vs-Chord
    // deltas under the same churn isolate stale-routing-state effects
    // from population-change effects. Each event is an O(log n) index
    // update, so 10^5-member rings churn without rescans or re-sorts.
    //
    // The stale-oracle arm additionally maintains a *bounded-lag* replica
    // of the index that stops absorbing events `lag_ticks` before the
    // horizon — the membership view a client with delayed propagation
    // would sample against. Both replicas see the identical event stream
    // (the stale bookkeeping draws nothing from the churn RNG), so the
    // fresh-oracle record is byte-identical with or without a stale arm
    // in the battery.
    let mut stale = lag_ticks.map(|_| members.clone());
    if let Some(schedule) = churn_schedule(&spec.churn) {
        let cutoff = lag_ticks.map(|lag| schedule.horizon().ticks().saturating_sub(lag));
        let mut churn_rng = StdRng::seed_from_u64(derive_seed(seed, stream::CHURN));
        let mut next_id = members.len() as u64;
        for event in schedule.generate(&mut churn_rng) {
            let seen_by_stale = cutoff.is_some_and(|c| event.time.ticks() <= c);
            match event.kind {
                simnet::churn::ChurnKind::Join => {
                    let point = space.random_point(&mut churn_rng);
                    members.insert(point, next_id);
                    if seen_by_stale {
                        if let Some(stale) = stale.as_mut() {
                            stale.insert(point, next_id);
                        }
                    }
                    next_id += 1;
                }
                simnet::churn::ChurnKind::Leave | simnet::churn::ChurnKind::Crash => {
                    if members.len() > 2 {
                        let (point, id) = members
                            .nth(churn_rng.gen_range(0..members.len()))
                            .expect("victim rank is in range");
                        members.remove(point, id);
                        if seen_by_stale {
                            if let Some(stale) = stale.as_mut() {
                                stale.remove(point, id);
                            }
                        }
                    }
                }
                // Domain outages are injected by the harness at draw
                // checkpoints (see the chord path), never through the
                // schedule, so these never reach the oracle replay.
                simnet::churn::ChurnKind::DomainCrash { .. }
                | simnet::churn::ChurnKind::DomainHeal { .. } => {}
            }
        }
    }
    let truth = OracleDht::from_index(&members);
    let live = truth.len();
    assert!(live >= 2, "churn left fewer than two live peers");
    // The client samples against its (possibly lagged) view; correctness
    // is judged against the current population. The fresh arm borrows
    // the truth ring rather than copying it — at RP_SCALE sizes the ring
    // is megabytes per task.
    let stale_view = stale.as_ref().map(OracleDht::from_index);
    let view: &OracleDht = stale_view.as_ref().unwrap_or(&truth);
    assert!(view.len() >= 2, "stale view collapsed below two peers");
    let (config, estimate_failed) = build_sampler_config(spec, view, 0, view.len());
    let sampler = Sampler::new(config);

    let mut draw_rng = StdRng::seed_from_u64(derive_seed(seed, stream::DRAWS));
    let mut tally = DrawTally::default();
    let mut draw_msgs = LogHistogram::new();
    let mut counts = vec![0u64; live];
    for _ in 0..spec.workload.draws {
        match sampler.sample(view, &mut draw_rng) {
            Ok(s) => {
                if stale.is_none() {
                    tally.record(s.trials, s.cost);
                    draw_msgs.record(s.cost.messages);
                    counts[s.peer] += 1;
                    continue;
                }
                // Stale arm: the draw names a peer from the lagged view.
                // Contacting one that has since departed bounces (a
                // failed draw); a live one is tallied at its *current*
                // rank, so joiners the view missed show up as zero cells
                // in the uniformity histogram.
                if members.contains_point(s.point) {
                    tally.record(s.trials, s.cost);
                    draw_msgs.record(s.cost.messages);
                    counts[truth.ring().successor_of(s.point)] += 1;
                } else {
                    tally.failed += 1;
                }
            }
            Err(_) => tally.failed += 1,
        }
    }
    let (tv, ratio, chi_p) = uniformity(&counts);
    SeedRunRecord {
        backend: match lag_ticks {
            Some(lag) => Backend::StaleOracle { lag_ticks: lag }.name().to_string(),
            None => Backend::Oracle.name().to_string(),
        },
        seed,
        live_peers: live as u64,
        anchor_point: view.ring().point(0),
        byzantine_peers: 0,
        samples_ok: tally.ok,
        samples_failed: tally.failed,
        estimate_failed,
        mean_trials: DrawTally::mean(tally.trials, tally.ok),
        mean_messages: DrawTally::mean(tally.messages, tally.ok),
        mean_latency: DrawTally::mean(tally.latency, tally.ok),
        tv_from_uniform: tv,
        max_min_ratio: ratio,
        chi_square_p: chi_p,
        byzantine_population_share: 0.0,
        byzantine_sample_share: 0.0,
        committee_capture_p: 0.0,
        committee_capture_p_uniform: 0.0,
        quorum_failures: 0,
        finger_staleness: 0.0,
        maintenance_backlog: 0,
        hop_p50: 0,
        hop_p99: 0,
        hop_p999: 0,
        draw_msgs_p50: draw_msgs.p50(),
        draw_msgs_p99: draw_msgs.p99(),
        watchdog_windows: 0,
        health_breaches: 0,
        time_to_detect: -1,
        time_to_recover: 0,
        outage_draws: 0,
        outage_ok: 0,
        outage_success_ratio: 1.0,
        engine_lookups: 0,
        engine_completed: 0,
        engine_timeouts: 0,
        engine_age_p50: 0,
        engine_age_p99: 0,
        engine_age_p999: 0,
        engine_ttd: -1,
        engine_ttr: 0,
        engine_digest: String::new(),
        health_events: Vec::new(),
        series: BTreeMap::new(),
        tail_exemplars: Vec::new(),
        exemplar_count: 0,
        span_costs: BTreeMap::new(),
        trace_digest: String::new(),
        counters: BTreeMap::new(),
    }
}

/// Closes the current draw window: per-peer draw deltas since the last
/// close feed the chi-square drift rule, and the recorder's windowed
/// counter/histogram deltas feed the longitudinal gauges.
///
/// Domain-outage runs additionally hand the watchdog a per-window
/// lookup-outcome tally (the success-ratio rule) and suppress the
/// chi-square drift input for windows the outage touched — a correlated
/// crash *makes* the draw distribution non-uniform, and flagging that as
/// sampler drift would misattribute the fault.
fn close_draw_window(
    watchdog: &mut Watchdog,
    net: &ChordNetwork,
    base: &mut [u64],
    counts: &[u64],
    outcomes: Option<&LookupOutcomes>,
    suppress_drift: bool,
) {
    let delta: Vec<u64> = counts.iter().zip(base.iter()).map(|(c, b)| c - b).collect();
    let window = net.metrics().recorder().reset_window();
    let draw_counts = if suppress_drift {
        None
    } else {
        Some(delta.as_slice())
    };
    watchdog.observe_with_outcomes(net, window, draw_counts, outcomes);
    base.copy_from_slice(counts);
}

/// Drives a spec's correlated domain outage through the chord draw loop:
/// crashes domains `0..crash_domains` as a unit at the crash checkpoint,
/// rejoins exactly the downed members at the heal checkpoint (then drains
/// the repair backlog), and tallies per-window lookup outcomes for the
/// watchdog's success-ratio rule, attributed to the offending domains.
struct OutageDriver {
    map: simnet::DomainMap,
    crash_domains: u32,
    /// Draw indices at which the outage begins / ends.
    crash_at: u64,
    heal_at: u64,
    active: bool,
    /// Whether the outage overlapped the watchdog window being tallied.
    window_touched: bool,
    /// `(point, original id)` per downed member, so healing rejoins
    /// exactly the members that failed and reports can map the rejoined
    /// node (a fresh id) back to its pre-outage draw-histogram cell.
    downed: Vec<(Point, NodeId)>,
    outage_draws: u64,
    outage_ok: u64,
    window_ok: u64,
    window_failed: u64,
}

impl OutageDriver {
    fn new(spec: &crate::FailureDomainSpec, space: KeySpace, draws: u64) -> OutageDriver {
        OutageDriver {
            map: simnet::DomainMap::sectors(spec.domains, space.modulus()),
            crash_domains: spec.crash_domains,
            crash_at: (draws as f64 * spec.outage_start).floor() as u64,
            heal_at: (draws as f64 * spec.outage_end).floor() as u64,
            active: false,
            window_touched: false,
            downed: Vec::new(),
            outage_draws: 0,
            outage_ok: 0,
            window_ok: 0,
            window_failed: 0,
        }
    }

    /// Whether `p` lies in one of the domains scripted to crash.
    fn in_crashed_domains(&self, p: Point) -> bool {
        self.map.domain_of(p.get()) < self.crash_domains
    }

    /// The crashed domain labels — the watchdog attribution payload.
    fn suspects(&self) -> Vec<u64> {
        (0..u64::from(self.crash_domains)).collect()
    }

    /// Kills every live member of the crashed domains in one instant
    /// (the measuring anchor survives by construction: it is chosen
    /// outside the crashed domains).
    fn apply_crash(&mut self, net: &mut ChordNetwork, anchor: NodeId) {
        let victims: Vec<NodeId> = net
            .live_ids()
            .into_iter()
            .filter(|&id| id != anchor && self.in_crashed_domains(net.node(id).point()))
            .collect();
        for v in victims {
            if net.live_len() < 2 {
                break;
            }
            self.downed.push((net.node(v).point(), v));
            net.crash(v);
        }
        net.metrics()
            .recorder()
            .add(net.counters().domain_events, u64::from(self.crash_domains));
        self.active = true;
        self.window_touched = true;
    }

    /// Rejoins the downed members at their original ring points (via the
    /// anchor), draining the maintenance backlog between passes so
    /// rejoins that raced the still-damaged ring get a second chance
    /// over a repaired one. Returns `new id → original id` aliases so
    /// draw accounting keeps one histogram cell per ring point across
    /// the outage.
    fn apply_heal(
        &mut self,
        net: &mut ChordNetwork,
        anchor: NodeId,
        repair_rng: &mut StdRng,
    ) -> std::collections::HashMap<NodeId, NodeId> {
        let mut aliases = std::collections::HashMap::new();
        let mut pending = std::mem::take(&mut self.downed);
        // Successor-list correctness propagates backwards one node per
        // stabilize round, so re-converging a rejoined arc takes Θ(arc)
        // rounds, not O(1): cap the drain proportionally.
        let drain_cap = 8 + 2 * pending.len();
        for _ in 0..2 {
            let mut failed = Vec::new();
            for (point, original) in pending {
                match net.join(point, anchor, repair_rng) {
                    Ok(id) => {
                        aliases.insert(id, original);
                    }
                    Err(_) => failed.push((point, original)),
                }
            }
            // Drain the repair backlog (bounded: repairs can re-dirty
            // neighbours) so retries and post-outage draws route over a
            // re-converged ring.
            for _ in 0..drain_cap {
                if net.maintenance_backlog() == 0 {
                    break;
                }
                net.batched_maintenance_round(MaintenanceBudget::unlimited(), repair_rng);
            }
            pending = failed;
            if pending.is_empty() {
                break;
            }
        }
        net.metrics()
            .recorder()
            .add(net.counters().domain_events, u64::from(self.crash_domains));
        self.active = false;
        // The heal window stays suppressed for drift purposes: the heal
        // itself (rejoins + repair lookups) skews that window's deltas.
        self.window_touched = true;
        aliases
    }

    /// One draw's outcome, while the driver is attached.
    fn record_draw(&mut self, ok: bool) {
        if ok {
            self.window_ok += 1;
        } else {
            self.window_failed += 1;
        }
        if self.active {
            self.window_touched = true;
            self.outage_draws += 1;
            if ok {
                self.outage_ok += 1;
            }
        }
    }

    /// Closes the window tally: the outcome payload for the watchdog and
    /// whether the chi-square drift input should be suppressed.
    fn close_window(&mut self) -> (LookupOutcomes, bool) {
        let outcomes = LookupOutcomes {
            ok: self.window_ok,
            failed: self.window_failed,
            suspects: if self.window_touched {
                self.suspects()
            } else {
                Vec::new()
            },
        };
        let suppress = self.window_touched;
        self.window_ok = 0;
        self.window_failed = 0;
        self.window_touched = self.active;
        (outcomes, suppress)
    }

    fn success_ratio(&self) -> f64 {
        if self.outage_draws == 0 {
            1.0
        } else {
            self.outage_ok as f64 / self.outage_draws as f64
        }
    }
}

/// The watchdog-close payload for the current window: the outcome tally
/// (domain runs only) and whether to suppress the drift input.
fn outage_close_args(outage: &mut Option<OutageDriver>) -> (Option<LookupOutcomes>, bool) {
    match outage.as_mut() {
        Some(o) => {
            let (outcomes, suppress) = o.close_window();
            (Some(outcomes), suppress)
        }
        None => (None, false),
    }
}

/// Everything the async engine phase contributes to the record.
struct EnginePhase {
    lookups: u64,
    completed: u64,
    timeouts: u64,
    age_p50: u64,
    age_p99: u64,
    age_p999: u64,
    ttd: i64,
    ttr: i64,
    digest: String,
}

/// Exact nearest-rank percentile over a sorted sample set (0 on empty).
/// The engine tail is computed here, not off the log-bucketed window
/// histograms: the e16 verdicts compare arms against each other, and
/// bucket rounding at 1/16 relative error could mask a real delta.
fn exact_percentile(sorted: &[u64], numer: usize, denom: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * numer / denom]
}

/// Drives the spec's async engine phase: the whole workload is submitted
/// up front and multiplexed through `chord::LookupEngine` — explicit
/// find-successor messages over the simnet event queue with per-hop
/// latency draws, per-request deadlines feeding the retry tiers — while
/// the clock advances in observation windows, each closing a telemetry
/// window into the watchdog (the in-flight-age SLO). An optional
/// slow-sector overlay delays the fault sector's answers mid-phase:
/// nothing dies and no lookup fails, so the only observable symptom is
/// the completion-age tail.
fn run_engine_phase(
    engine_spec: &crate::EngineSpec,
    net: &ChordNetwork,
    faults: &FaultPlan,
    watchdog: &mut Watchdog,
    space: KeySpace,
    seed: u64,
) -> EnginePhase {
    let mut engine = chord::LookupEngine::new(chord::EngineConfig {
        timeout_ticks: Some(engine_spec.timeout_ticks),
        max_inflight: engine_spec.inflight as usize,
        seed: derive_seed(seed, stream::ENGINE),
    });
    let live = net.live_ids();
    let total_ticks = u64::from(engine_spec.windows) * engine_spec.window_ticks;

    // The slow sectors and the origin pool: origins are drawn outside
    // the slow sectors (a slow *origin* cannot be routed around; the
    // fault under test is slow transit hops and owners).
    let slow_nodes: std::collections::BTreeSet<NodeId> = engine_spec
        .slow
        .map(|s| {
            let map = simnet::DomainMap::sectors(s.domains, space.modulus());
            live.iter()
                .copied()
                .filter(|&id| map.domain_of(net.node(id).point().get()) < s.slow)
                .collect()
        })
        .unwrap_or_default();
    if let Some(s) = engine_spec.slow {
        engine.set_slow_overlay(Some(chord::SlowOverlay {
            nodes: slow_nodes.clone(),
            factor: s.factor,
            from: simnet::SimTime::from_ticks((total_ticks as f64 * s.start_frac).floor() as u64),
            until: simnet::SimTime::from_ticks((total_ticks as f64 * s.end_frac).floor() as u64),
        }));
    }
    let origins: Vec<NodeId> = live
        .iter()
        .copied()
        .filter(|id| !slow_nodes.contains(id))
        .collect();
    assert!(!origins.is_empty(), "slow sectors swallowed every origin");

    // The workload is submitted in per-window batches (each batch enters
    // the event loop at its window's opening tick), so traffic is in
    // flight across the whole phase and a mid-phase slow window has
    // requests to age — an up-front burst would drain before the fault
    // starts. Tags are global and the RNG stream is one sequence, so the
    // batching is part of the deterministic replay.
    let mut workload_rng = StdRng::seed_from_u64(derive_seed(seed, stream::ENGINE_WORKLOAD));
    let total_lookups = u64::from(engine_spec.lookups);
    let windows = u64::from(engine_spec.windows);
    let per_window = (total_lookups / windows).max(1);
    let mut next_tag = 0u64;
    let base_window = watchdog.windows_observed();
    for w in 1..=windows {
        let quota = if w == windows {
            total_lookups - next_tag
        } else {
            per_window.min(total_lookups - next_tag)
        };
        for _ in 0..quota {
            let origin = origins[workload_rng.gen_range(0..origins.len())];
            let target = space.random_point(&mut workload_rng);
            engine.submit_tagged(net, next_tag, origin, target);
            next_tag += 1;
        }
        engine.run_until(
            net,
            faults,
            simnet::SimTime::from_ticks(w * engine_spec.window_ticks),
        );
        let window = net.metrics().recorder().reset_window();
        watchdog.observe_with_outcomes(net, window, None, None);
    }
    // Stragglers past the horizon (the backlog admits as slots free, so
    // the tail of a capped run finishes here), then their final window.
    engine.drain(net, faults);
    let window = net.metrics().recorder().reset_window();
    watchdog.observe_with_outcomes(net, window, None, None);

    let mut ages: Vec<u64> = engine
        .completions()
        .iter()
        .map(|c| (c.completed_at - c.submitted_at).ticks())
        .collect();
    ages.sort_unstable();
    // Detection / recovery for the in-flight-age rule alone. Detection
    // is counted from the *fault onset* window (the slow window's first
    // tick) when the phase carries a slow sector, else from the phase's
    // first window — so a "ttd ≤ k" gate reads as "windows from the
    // fault starting to the watchdog flagging it". The record's
    // run-level ttd/ttr span every rule over the whole run.
    let onset_window = base_window
        + engine_spec
            .slow
            .map_or(0, |s| (windows as f64 * s.start_frac).floor() as u64);
    let age_events: Vec<&chord::HealthEvent> = watchdog
        .events()
        .iter()
        .filter(|e| e.rule == chord::SloRule::InflightAge && e.window >= base_window)
        .collect();
    let first_breach = age_events
        .iter()
        .find(|e| e.kind == chord::HealthKind::Breach)
        .map(|e| e.window);
    let ttd = first_breach.map_or(-1, |w| w as i64 - onset_window as i64);
    let ttr = match first_breach {
        None => 0,
        Some(b) => match age_events.last() {
            Some(e) if e.kind == chord::HealthKind::Recover => (e.window - b) as i64,
            _ => -1,
        },
    };
    EnginePhase {
        lookups: u64::from(engine_spec.lookups),
        completed: engine.completions().len() as u64,
        timeouts: net.metrics().get("engine.timeouts"),
        age_p50: exact_percentile(&ages, 50, 100),
        age_p99: exact_percentile(&ages, 99, 100),
        age_p999: exact_percentile(&ages, 999, 1000),
        ttd,
        ttr,
        digest: format!("{:016x}", engine.report_digest()),
    }
}

/// The watchdog's gauge columns as named series, in window order. The
/// success-ratio column only exists on runs that fed the watchdog
/// outcome tallies (domain-outage arms), and the in-flight-age column
/// only on runs with an engine phase — elsewhere those gauges are never
/// stamped and a column of implicit zeros would misread as figures.
fn watchdog_series(
    watchdog: &Watchdog,
    with_success: bool,
    with_engine: bool,
) -> BTreeMap<String, Vec<f64>> {
    use chord::watchdog::gauge;
    let mut names = vec![
        gauge::LIVE,
        gauge::BACKLOG,
        gauge::STALENESS,
        gauge::DEFECT_RATE,
        gauge::HOP_P50,
        gauge::HOP_P99,
        gauge::FORGED_RATE,
        gauge::DRAW_COST,
    ];
    if with_success {
        names.push(gauge::SUCCESS);
    }
    if with_engine {
        names.push(gauge::AGE_P99);
    }
    names
        .into_iter()
        .map(|name| (name.to_string(), watchdog.series().gauge_column(name)))
        .collect()
}

fn run_chord(
    spec: &ScenarioSpec,
    seed: u64,
    space: KeySpace,
    members: RingIndex<u64>,
    force_trace: bool,
) -> (SeedRunRecord, Option<TraceDump>) {
    let mut config = ChordConfig::default().with_successor_list_len(spec.chord.successor_list_len);
    // Compile the spec's latency model into the substrate (previously the
    // spec had no latency knob and every chord arm silently ran at the
    // unit-constant default). Every routed message — draws, maintenance,
    // engine hops — samples from it.
    if let Some(latency) = spec.chord.latency {
        config = config.with_latency(latency.to_model());
    }

    // A coalition adversary compiles *before* the overlay exists: it
    // observes the honest membership and chooses its own ring positions
    // (sybil strategies) and/or a corruption budget over incumbents.
    let coalition = match &spec.adversary {
        AdversaryModel::Coalition { strategy, fraction } => {
            let honest = members.len();
            // Sybil members are *added*, so a budget of f of the final
            // population means m = f/(1−f)·honest joiners; corrupt-existing
            // strategies convert ⌊f·honest⌋ incumbents instead.
            let strategy = strategy.to_strategy();
            let budget = match strategy {
                adversary::CoalitionStrategy::AdaptiveArcLiars => {
                    (honest as f64 * fraction).floor() as usize
                }
                _ => (honest as f64 * fraction / (1.0 - fraction)).round() as usize,
            };
            Some(compile_coalition(strategy, &members, budget.max(1)))
        }
        _ => None,
    };
    let mut points = members.points();
    if let Some(coalition) = &coalition {
        points.extend(coalition.sybil_points.iter().copied());
    }

    // Build the overlay: straight bootstrap when static, an event-driven
    // churn run (joins through the protocol, crashes silent) otherwise.
    // (Coalition specs validate as static, so sybil joins never race
    // churn.) Owned mutably: a domain outage crashes and heals members
    // mid-draw-loop.
    let mut watchdog = None;
    let mut churned = match churn_schedule(&spec.churn) {
        None => chord::ChordNetwork::bootstrap(space, points, config),
        Some(schedule) => {
            let mut sim = ChurnSimulation::with_schedule_over(
                points,
                config,
                &schedule,
                SimDuration::from_ticks(spec.chord.stabilize_every_ticks),
                derive_seed(seed, stream::CHURN),
            );
            if let Some(budget) = spec.chord.maintenance.budget() {
                sim = sim.with_maintenance_budget(budget);
            }
            // The watchdog rides the churn phase: one window per
            // maintenance round, observed pre-repair. It draws from its
            // own stream, so attaching it perturbs no other randomness.
            sim = sim.with_watchdog(Watchdog::new(
                SloConfig::default(),
                derive_seed(seed, stream::WATCHDOG),
            ));
            sim.run_to_end();
            watchdog = sim.take_watchdog();
            sim.into_network()
        }
    };
    // Arm the resilience knobs before any measured lookup routes: peer
    // scoring learns from per-hop probe outcomes, the retry policy
    // degrades failed lookups through fallback tiers (see `chord::score`).
    // Both are deterministic and off the RNG path, so arming them never
    // perturbs another stream.
    if spec.adaptive.peer_scoring {
        churned.enable_adaptive_routing(AdaptiveConfig::default());
    }
    if spec.adaptive.retry {
        churned.enable_retry_policy(RetryPolicy::default());
    }

    let live = churned.live_ids();
    assert!(live.len() >= 2, "churn left fewer than two live peers");

    // Tracing covers the *measured* workload only: switching it on after
    // overlay construction keeps bulk-join / churn lookups out of the
    // flight recorder, so the digest fingerprints the draws alone.
    let tracing = force_trace || spec.telemetry.trace_lookups;
    if tracing {
        let recorder = churned.metrics().recorder();
        recorder.set_trace_capacity(spec.telemetry.flight_recorder_capacity.max(1) as usize);
        recorder.set_tracing(true);
    }

    // Static arms start the watchdog clock here; either way the recorder
    // window closes at the draw boundary, so draw windows carry draw
    // activity only (bootstrap and post-horizon churn deltas excluded).
    let mut watchdog = watchdog.unwrap_or_else(|| {
        Watchdog::new(SloConfig::default(), derive_seed(seed, stream::WATCHDOG))
    });
    let _ = churned.metrics().recorder().reset_window();

    // Resolve the coalition's sybil points to overlay ids before picking
    // the observer, so the anchor is never a coalition plant.
    let sybils: Vec<NodeId> = coalition
        .as_ref()
        .map(|c| sybil_ids(&churned, &c.sybil_points))
        .unwrap_or_default();
    let sybil_set: std::collections::HashSet<NodeId> = sybils.iter().copied().collect();

    // The correlated-outage driver (specs with domain structure). Its
    // checkpoints are draw indices, applied inside the draw loop.
    let mut outage = spec
        .domains
        .as_ref()
        .map(|d| OutageDriver::new(d, space, u64::from(spec.workload.draws)));

    // The sampling client is always an honest peer: the measurement model
    // is an honest node asking "whom do I reach?", so the anchor is fixed
    // first and exempted from adversary sampling. At fraction = 1 this
    // caps the adversary at live − 1 nodes (everyone but the observer).
    // Under a domain outage it is additionally chosen outside the
    // crashed domains — the observer's rack stays up; it is the *routes*
    // through the dead arc that degrade.
    let anchor = live
        .iter()
        .copied()
        .find(|&id| {
            !sybil_set.contains(&id)
                && outage
                    .as_ref()
                    .is_none_or(|o| !o.in_crashed_domains(churned.node(id).point()))
        })
        .expect("a sub-half coalition and a sub-total outage leave an honest observer");

    // Uniform sample without replacement from the non-anchor peers
    // (partial Fisher–Yates over the fault stream).
    let sample_existing = |count: usize, fault_rng: &mut StdRng| -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> = live
            .iter()
            .copied()
            .filter(|&id| id != anchor && !sybil_set.contains(&id))
            .collect();
        let count = count.min(candidates.len());
        for i in 0..count {
            let j = fault_rng.gen_range(i..candidates.len());
            candidates.swap(i, j);
        }
        candidates.truncate(count);
        candidates
    };

    // Compile the adversary into a fault plan; coalition behaviours are
    // *merged* onto the base plan, never overwritten.
    let mut plan = FaultPlan::none();
    match &spec.adversary {
        AdversaryModel::Honest => {}
        AdversaryModel::ByzantineRouters {
            fraction,
            claim_ownership,
            eclipse_next,
        } => {
            let mut fault_rng = StdRng::seed_from_u64(derive_seed(seed, stream::FAULTS));
            let count = ((live.len() as f64 * fraction).floor() as usize).min(live.len() - 1);
            let mut routers = FaultPlan::for_nodes(sample_existing(count, &mut fault_rng));
            if !claim_ownership {
                routers = routers.without_ownership_claims();
            }
            if !eclipse_next {
                routers = routers.without_next_eclipse();
            }
            plan.merge(&routers);
        }
        AdversaryModel::Coalition { .. } => {
            let coalition = coalition.as_ref().expect("compiled above");
            plan.merge(&FaultPlan::with_behavior(
                sybils.iter().copied(),
                coalition.behavior,
            ));
            if coalition.corrupt_existing > 0 {
                let mut fault_rng = StdRng::seed_from_u64(derive_seed(seed, stream::FAULTS));
                plan.merge(&FaultPlan::with_behavior(
                    sample_existing(coalition.corrupt_existing, &mut fault_rng),
                    coalition.behavior,
                ));
            }
        }
    }
    let byzantine: std::collections::HashSet<NodeId> = plan.byzantine_nodes().into_iter().collect();

    let index_of: std::collections::HashMap<NodeId, usize> =
        live.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut draw_rng = StdRng::seed_from_u64(derive_seed(seed, stream::DRAWS));
    let mut tally = DrawTally::default();
    let mut draw_msgs = LogHistogram::new();
    let mut counts = vec![0u64; live.len()];
    let mut byz_hits = 0u64;
    let mut quorum_failures = 0u64;
    let estimate_failed;

    // Draw-phase observation windows (see [`DRAW_WINDOW`]).
    let draw_window = (DRAW_WINDOW as usize).max(5 * live.len()) as u64;
    let mut window_base = vec![0u64; live.len()];
    let mut draws_in_window = 0u64;

    // Rejoined outage members come back under fresh overlay ids; this
    // maps them to their pre-outage ids so the uniformity histogram
    // keeps one cell per ring point across the outage.
    let mut aliases: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();

    // The per-draw bookkeeping both arms share, so defended and
    // undefended accounting cannot diverge.
    let record_draw = |tally: &mut DrawTally,
                       draw_msgs: &mut LogHistogram,
                       counts: &mut [u64],
                       byz_hits: &mut u64,
                       aliases: &std::collections::HashMap<NodeId, NodeId>,
                       peer: NodeId,
                       trials: u32,
                       cost: peer_sampling::Cost| {
        tally.record(trials, cost);
        draw_msgs.record(cost.messages);
        let peer = aliases.get(&peer).copied().unwrap_or(peer);
        if let Some(&i) = index_of.get(&peer) {
            counts[i] += 1;
        }
        if byzantine.contains(&peer) {
            *byz_hits += 1;
        }
    };

    match spec.defense {
        DefenseModel::None => {
            let latency_seed = derive_seed(seed, stream::LATENCY);
            // The sampler is configured once, against the pre-outage
            // ring (a deployment would not retune mid-outage).
            let (config, est_failed) = {
                let dht =
                    ChordDht::new(&churned, anchor, latency_seed).with_fault_plan(plan.clone());
                build_sampler_config(spec, &dht, anchor, live.len())
            };
            estimate_failed = est_failed;
            let sampler = Sampler::new(config);
            let mut repair_rng = StdRng::seed_from_u64(derive_seed(seed, stream::REPAIR));
            let total = u64::from(spec.workload.draws);
            let mut next_draw = 0u64;
            // The draw loop runs in segments bounded by the outage
            // checkpoints: membership transitions need `&mut` access to
            // the overlay, so the DHT view (a shared borrow) is rebuilt
            // after each one. The latency seed is reused verbatim — the
            // default latency model is constant, so the view's RNG draws
            // nothing and the rebuild perturbs no stream.
            while next_draw < total {
                if let Some(o) = outage.as_mut() {
                    if next_draw == o.crash_at {
                        o.apply_crash(&mut churned, anchor);
                    }
                    if next_draw == o.heal_at {
                        aliases.extend(o.apply_heal(&mut churned, anchor, &mut repair_rng));
                    }
                }
                let segment_end = outage
                    .as_ref()
                    .and_then(|o| {
                        [o.crash_at, o.heal_at]
                            .into_iter()
                            .filter(|&b| b > next_draw && b < total)
                            .min()
                    })
                    .unwrap_or(total);
                let dht =
                    ChordDht::new(&churned, anchor, latency_seed).with_fault_plan(plan.clone());
                for _ in next_draw..segment_end {
                    let ok = match sampler.sample(&dht, &mut draw_rng) {
                        Ok(s) => {
                            record_draw(
                                &mut tally,
                                &mut draw_msgs,
                                &mut counts,
                                &mut byz_hits,
                                &aliases,
                                s.peer,
                                s.trials,
                                s.cost,
                            );
                            true
                        }
                        Err(_) => {
                            tally.failed += 1;
                            false
                        }
                    };
                    if let Some(o) = outage.as_mut() {
                        o.record_draw(ok);
                    }
                    draws_in_window += 1;
                    if draws_in_window == draw_window {
                        let (outcomes, suppress) = outage_close_args(&mut outage);
                        close_draw_window(
                            &mut watchdog,
                            &churned,
                            &mut window_base,
                            &counts,
                            outcomes.as_ref(),
                            suppress,
                        );
                        draws_in_window = 0;
                    }
                }
                next_draw = segment_end;
            }
        }
        DefenseModel::Quorum { entries } => {
            // Specs with domain structure validate as undefended, so the
            // quorum path never sees an outage checkpoint.
            let net = &churned;
            let views = adversary::spread_verified_views(
                net,
                anchor,
                &plan,
                entries,
                derive_seed(seed, stream::LATENCY),
            );
            let view_refs: Vec<&ChordDht> = views.iter().collect();
            let (config, est_failed) = build_sampler_config(spec, view_refs[0], anchor, live.len());
            estimate_failed = est_failed;
            let sampler = DefendedSampler::new(config);
            // Registered here, not in `chord` — the adversary crate has
            // no telemetry dependency, so the defended-draw phase is
            // annotated at the call site that drives it.
            let span_verify = net
                .metrics()
                .recorder()
                .profiler()
                .span("draw;defended_verify");
            for _ in 0..spec.workload.draws {
                // Each defended draw is a labelled cost scope, so the
                // report's breakdown attributes quorum redundancy to the
                // draws that paid it rather than to the run as a whole.
                let scope = net.metrics().recorder().begin_scope();
                // Tracked sampling: quorum failures on *exhausted* draws
                // (the fully-blocked case) still reach the counter.
                match sampler.sample_tracked(&view_refs, &mut draw_rng, &mut quorum_failures) {
                    Ok(s) => {
                        quorum_failures += s.quorum_failures as u64;
                        net.metrics()
                            .recorder()
                            .profiler()
                            .add(span_verify, s.cost.latency);
                        record_draw(
                            &mut tally,
                            &mut draw_msgs,
                            &mut counts,
                            &mut byz_hits,
                            &aliases,
                            s.peer,
                            s.trials,
                            s.cost,
                        )
                    }
                    Err(_) => tally.failed += 1,
                }
                net.metrics().recorder().end_scope("draw.defended", scope);
                draws_in_window += 1;
                if draws_in_window == draw_window {
                    close_draw_window(&mut watchdog, net, &mut window_base, &counts, None, false);
                    draws_in_window = 0;
                }
            }
        }
    }
    // Flush the final partial window: every run observes the post-churn
    // ring state at least once, so recoveries are confirmable.
    if draws_in_window > 0 {
        let (outcomes, suppress) = outage_close_args(&mut outage);
        close_draw_window(
            &mut watchdog,
            &churned,
            &mut window_base,
            &counts,
            outcomes.as_ref(),
            suppress,
        );
    }
    // The async engine phase (specs with engine structure) runs after
    // the draw loop, so draw windows and engine windows never interleave
    // and the age-rule verdicts are attributable to the engine workload.
    let engine_phase = spec
        .engine
        .as_ref()
        .map(|e| run_engine_phase(e, &churned, &plan, &mut watchdog, space, seed));
    let net = &churned;

    let (tv, ratio, chi_p) = uniformity(&counts);
    let byz_population_share = byzantine.len() as f64 / live.len() as f64;
    let byz_sample_share = if tally.ok == 0 {
        0.0
    } else {
        byz_hits as f64 / tally.ok as f64
    };
    // Staleness at sampling time: what the maintenance budget did not
    // repair (the verify_ring read is O(1) off the incremental ledger).
    let finger_staleness = 1.0 - net.verify_ring().finger_accuracy;
    let maintenance_backlog = if spec.chord.maintenance.budget().is_some() {
        net.maintenance_backlog() as u64
    } else {
        0
    };
    let recorder = net.metrics().recorder();
    let hop_hist = recorder.histogram_snapshot(net.counters().hop_hist);
    let trace_digest = if tracing {
        format!("{:016x}", recorder.trace_digest())
    } else {
        String::new()
    };
    let dump = tracing.then(|| TraceDump::from_recorder(recorder));
    // Tail exemplars ride each closed window's hop histogram (the final
    // partial window was flushed above, so nothing is still pending in
    // the open slot).
    let mut tail_exemplars = Vec::new();
    for window in watchdog.series().iter() {
        for (name, hist) in &window.hists {
            if name != "lookup.hops" {
                continue;
            }
            for e in hist.exemplars() {
                tail_exemplars.push(TailExemplar {
                    window: window.index,
                    bucket_upper: LogHistogram::bucket_upper(e.bucket),
                    value: e.value,
                    trace_id: e.trace_id,
                });
            }
        }
    }
    let span_costs: BTreeMap<String, u64> = recorder
        .profiler()
        .totals()
        .into_iter()
        .map(|(name, t)| (name, t.cost))
        .collect();
    let record = SeedRunRecord {
        backend: Backend::Chord.name().to_string(),
        seed,
        live_peers: live.len() as u64,
        anchor_point: net.node(anchor).point(),
        byzantine_peers: byzantine.len() as u64,
        samples_ok: tally.ok,
        samples_failed: tally.failed,
        estimate_failed,
        mean_trials: DrawTally::mean(tally.trials, tally.ok),
        mean_messages: DrawTally::mean(tally.messages, tally.ok),
        mean_latency: DrawTally::mean(tally.latency, tally.ok),
        tv_from_uniform: tv,
        max_min_ratio: ratio,
        chi_square_p: chi_p,
        byzantine_population_share: byz_population_share,
        byzantine_sample_share: byz_sample_share,
        committee_capture_p: majority_capture_probability(byz_sample_share, COMMITTEE_SIZE),
        committee_capture_p_uniform: majority_capture_probability(
            byz_population_share,
            COMMITTEE_SIZE,
        ),
        quorum_failures,
        finger_staleness,
        maintenance_backlog,
        hop_p50: hop_hist.p50(),
        hop_p99: hop_hist.p99(),
        hop_p999: hop_hist.p999(),
        draw_msgs_p50: draw_msgs.p50(),
        draw_msgs_p99: draw_msgs.p99(),
        watchdog_windows: watchdog.windows_observed(),
        health_breaches: watchdog.breaches(),
        time_to_detect: watchdog.time_to_detect(),
        time_to_recover: watchdog.time_to_recover(),
        outage_draws: outage.as_ref().map_or(0, |o| o.outage_draws),
        outage_ok: outage.as_ref().map_or(0, |o| o.outage_ok),
        outage_success_ratio: outage.as_ref().map_or(1.0, |o| o.success_ratio()),
        engine_lookups: engine_phase.as_ref().map_or(0, |e| e.lookups),
        engine_completed: engine_phase.as_ref().map_or(0, |e| e.completed),
        engine_timeouts: engine_phase.as_ref().map_or(0, |e| e.timeouts),
        engine_age_p50: engine_phase.as_ref().map_or(0, |e| e.age_p50),
        engine_age_p99: engine_phase.as_ref().map_or(0, |e| e.age_p99),
        engine_age_p999: engine_phase.as_ref().map_or(0, |e| e.age_p999),
        engine_ttd: engine_phase.as_ref().map_or(-1, |e| e.ttd),
        engine_ttr: engine_phase.as_ref().map_or(0, |e| e.ttr),
        engine_digest: engine_phase
            .as_ref()
            .map_or_else(String::new, |e| e.digest.clone()),
        health_events: watchdog
            .events()
            .iter()
            .map(chord::HealthEvent::render)
            .collect(),
        series: watchdog_series(&watchdog, outage.is_some(), engine_phase.is_some()),
        exemplar_count: tail_exemplars.len() as u64,
        tail_exemplars,
        span_costs,
        trace_digest,
        counters: net.metrics().snapshot(),
    };
    (record, dump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacementModel;

    fn quick(spec: &mut ScenarioSpec) {
        spec.n_initial = 96;
        spec.workload.draws = 400;
    }

    #[test]
    fn records_are_a_pure_function_of_spec_backend_seed() {
        let mut spec = ScenarioSpec::preset_crash_churn();
        quick(&mut spec);
        for backend in [Backend::Oracle, Backend::Chord] {
            let a = run_scenario_seed(&spec, backend, 42);
            let b = run_scenario_seed(&spec, backend, 42);
            assert_eq!(a, b, "{backend:?} must be deterministic");
            let c = run_scenario_seed(&spec, backend, 43);
            assert_ne!(a, c, "{backend:?} must vary with the seed");
        }
    }

    #[test]
    fn records_carry_exemplars_and_span_costs() {
        let mut spec = ScenarioSpec::preset_crash_churn();
        quick(&mut spec);
        // Retain every draw-phase trace so exemplar ids must resolve
        // (draws issue several routed attempts each; exemplars are
        // keep-first, so a small ring would evict exactly their traces).
        spec.telemetry.flight_recorder_capacity = 1 << 20;
        let r = run_scenario_seed(&spec, Backend::Chord, 42);
        assert!(r.exemplar_count > 0, "chord arms must claim exemplars");
        assert_eq!(r.exemplar_count as usize, r.tail_exemplars.len());
        assert!(r.span_costs["lookup;finger_walk"] > 0);
        assert!(r.span_costs.contains_key("maintenance;repair"));

        // A traced replay of the same cell resolves exemplar ids to
        // concrete traces whose hop count is the exemplar's value.
        let (replayed, dump) = run_scenario_seed_traced(&spec, Backend::Chord, 42);
        assert_eq!(replayed.tail_exemplars, r.tail_exemplars);
        assert_eq!(replayed.span_costs, r.span_costs);
        let by_ordinal: BTreeMap<u64, &telemetry::LookupTrace> =
            dump.traces.iter().map(|t| (t.ordinal, t)).collect();
        let matched: Vec<&TailExemplar> = r
            .tail_exemplars
            .iter()
            .filter(|e| by_ordinal.contains_key(&e.trace_id))
            .collect();
        assert!(
            !matched.is_empty(),
            "some exemplar must resolve to a retained trace"
        );
        for e in matched {
            let t = by_ordinal[&e.trace_id];
            assert_eq!(
                t.hops.len() as u64,
                e.value,
                "the replayed trace must land in the exemplar's bucket"
            );
            assert!(e.value <= e.bucket_upper);
        }

        // Oracle arms have no routing substrate: no exemplars, no spans.
        let o = run_scenario_seed(&spec, Backend::Oracle, 42);
        assert_eq!(o.exemplar_count, 0);
        assert!(o.tail_exemplars.is_empty());
        assert!(o.span_costs.is_empty());
    }

    #[test]
    fn honest_static_is_uniform_and_cheap_on_both_backends() {
        let mut spec = ScenarioSpec::preset_honest_static();
        quick(&mut spec);
        spec.workload.draws = 3_000;
        for backend in [Backend::Oracle, Backend::Chord] {
            let r = run_scenario_seed(&spec, backend, 7);
            assert_eq!(r.samples_failed, 0, "{backend:?}");
            assert_eq!(r.samples_ok, 3_000);
            assert!(
                r.tv_from_uniform < 0.35,
                "{backend:?} tv {}",
                r.tv_from_uniform
            );
            assert!(r.chi_square_p > 1e-4, "{backend:?} p {}", r.chi_square_p);
            assert!(r.mean_messages > 0.0);
        }
    }

    #[test]
    fn backends_are_paired_and_cost_within_a_constant_factor() {
        let mut spec = ScenarioSpec::preset_honest_static();
        quick(&mut spec);
        let oracle = run_scenario_seed(&spec, Backend::Oracle, 9);
        let chord = run_scenario_seed(&spec, Backend::Chord, 9);
        // Same placement stream: identical populations.
        assert_eq!(oracle.live_peers, chord.live_peers);
        // Both are Theta(log n) message machines; the oracle charges the
        // synthetic ceil(log2 n) per lookup while Chord pays measured hops
        // (~ half that on a healthy ring), so they agree to a constant.
        let ratio = chord.mean_messages / oracle.mean_messages;
        assert!(
            (0.2..5.0).contains(&ratio),
            "per-draw messages diverged: chord {} vs oracle {}",
            chord.mean_messages,
            oracle.mean_messages
        );
    }

    #[test]
    fn byzantine_routers_bias_chord_but_not_oracle() {
        let mut spec = ScenarioSpec::preset_byzantine_routers();
        quick(&mut spec);
        spec.workload.draws = 800;
        let chord = run_scenario_seed(&spec, Backend::Chord, 11);
        assert!(chord.byzantine_peers > 0);
        assert!(
            chord.byzantine_sample_share > 1.5 * chord.byzantine_population_share,
            "capture attack must overrepresent the adversary ({} vs {})",
            chord.byzantine_sample_share,
            chord.byzantine_population_share
        );
        let oracle = run_scenario_seed(&spec, Backend::Oracle, 11);
        assert_eq!(oracle.byzantine_peers, 0, "no routing to subvert");
        assert_eq!(oracle.byzantine_sample_share, 0.0);
    }

    #[test]
    fn crash_churn_changes_population_and_still_samples() {
        let mut spec = ScenarioSpec::preset_crash_churn();
        quick(&mut spec);
        let r = run_scenario_seed(&spec, Backend::Chord, 13);
        assert_ne!(r.live_peers, 96, "churn must move the population");
        let total = r.samples_ok + r.samples_failed;
        assert_eq!(total, 400);
        assert!(
            r.samples_ok as f64 / total as f64 > 0.9,
            "failure rate too high: {} ok / {total}",
            r.samples_ok
        );
    }

    #[test]
    fn clustered_ring_runs_and_reports_realized_population() {
        let mut spec = ScenarioSpec::preset_clustered_ring();
        quick(&mut spec);
        let r = run_scenario_seed(&spec, Backend::Oracle, 17);
        assert!(r.live_peers >= 2);
        assert_eq!(r.samples_ok + r.samples_failed, 400);
    }

    #[test]
    fn estimator_mode_works_end_to_end() {
        let mut spec = ScenarioSpec::preset_honest_static();
        quick(&mut spec);
        spec.workload.estimate_n = true;
        let r = run_scenario_seed(&spec, Backend::Oracle, 19);
        assert!(!r.estimate_failed);
        assert!(r.samples_ok > 0);
    }

    #[test]
    fn fully_byzantine_spec_runs_with_an_honest_observer() {
        // fraction = 1.0 is a valid spec; the measuring client stays
        // honest, capping the adversary at live - 1 peers.
        let mut spec = ScenarioSpec::preset_byzantine_routers();
        quick(&mut spec);
        spec.workload.draws = 100;
        spec.adversary = AdversaryModel::ByzantineRouters {
            fraction: 1.0,
            claim_ownership: true,
            eclipse_next: true,
        };
        let r = run_scenario_seed(&spec, Backend::Chord, 23);
        assert_eq!(r.byzantine_peers, r.live_peers - 1);
        assert!(
            r.byzantine_sample_share > 0.9,
            "{}",
            r.byzantine_sample_share
        );
    }

    #[test]
    fn full_spread_clustered_placement_runs() {
        // spread_fraction = 1.0 degenerates to uniform-per-cluster over
        // the whole ring; must not panic on the 2^64 modulus.
        let mut spec = ScenarioSpec::preset_clustered_ring();
        quick(&mut spec);
        spec.workload.draws = 100;
        spec.placement = PlacementModel::Clustered {
            clusters: 4,
            spread_fraction: 1.0,
        };
        let r = run_scenario_seed(&spec, Backend::Oracle, 29);
        assert!(r.samples_ok > 0);
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn invalid_specs_are_rejected() {
        let mut spec = ScenarioSpec::preset_honest_static();
        spec.workload.draws = 0;
        let _ = run_scenario_seed(&spec, Backend::Oracle, 1);
    }

    #[test]
    fn tail_percentiles_and_counters_populate_per_backend() {
        let mut spec = ScenarioSpec::preset_honest_static();
        quick(&mut spec);
        let chord = run_scenario_seed(&spec, Backend::Chord, 31);
        // Chord routes: hop tails are measured and ordered.
        assert!(chord.hop_p99 > 0, "routed lookups must record hops");
        assert!(chord.hop_p50 <= chord.hop_p99 && chord.hop_p99 <= chord.hop_p999);
        // The paper's bound at this size, with the histogram's 1/16 slack.
        let log_n = (chord.live_peers as f64).log2();
        assert!(
            (chord.hop_p99 as f64) <= 4.0 * log_n + 4.0,
            "hop p99 {} breaks O(log n) on a healthy ring",
            chord.hop_p99
        );
        assert!(chord.draw_msgs_p50 > 0 && chord.draw_msgs_p50 <= chord.draw_msgs_p99);
        assert!(!chord.counters.is_empty(), "chord arms snapshot counters");
        assert!(chord.counters.contains_key("lookup.hops"), "{:?}", {
            chord.counters.keys().collect::<Vec<_>>()
        });
        assert!(chord.trace_digest.is_empty(), "tracing defaults off");
        // The oracle has no routing substrate: hop tails and counters are
        // empty, but per-draw message tails still report synthetic cost.
        let oracle = run_scenario_seed(&spec, Backend::Oracle, 31);
        assert_eq!(oracle.hop_p99, 0);
        assert!(oracle.draw_msgs_p50 > 0);
        assert!(oracle.counters.is_empty());
        assert!(oracle.trace_digest.is_empty());
    }

    #[test]
    fn traced_runs_differ_only_in_the_digest_field() {
        let mut spec = ScenarioSpec::preset_honest_static();
        quick(&mut spec);
        let plain = run_scenario_seed(&spec, Backend::Chord, 37);
        let (traced, dump) = run_scenario_seed_traced(&spec, Backend::Chord, 37);
        assert!(!traced.trace_digest.is_empty());
        assert_eq!(traced.trace_digest, format!("{:016x}", dump.digest));
        assert!(dump.recorded > 0, "draws must leave traces");
        assert!(!dump.traces.is_empty());
        assert!(dump.traces.len() as u64 <= dump.recorded);
        // Tracing must not perturb the simulation: same record otherwise.
        let mut masked = traced.clone();
        masked.trace_digest = String::new();
        assert_eq!(masked, plain);
        // Replays are deterministic down to the digest.
        let (again, dump2) = run_scenario_seed_traced(&spec, Backend::Chord, 37);
        assert_eq!(again, traced);
        assert_eq!(dump2, dump);
    }

    #[test]
    fn spec_level_tracing_populates_the_digest_and_oracle_dumps_are_empty() {
        let mut spec = ScenarioSpec::preset_honest_static();
        quick(&mut spec);
        spec.telemetry.trace_lookups = true;
        spec.telemetry.flight_recorder_capacity = 8;
        let r = run_scenario_seed(&spec, Backend::Chord, 41);
        assert!(!r.trace_digest.is_empty());
        let (oracle, dump) = run_scenario_seed_traced(&spec, Backend::Oracle, 41);
        assert!(oracle.trace_digest.is_empty(), "no routing, no traces");
        assert_eq!(dump.recorded, 0);
        assert!(dump.traces.is_empty());
    }

    fn quick_domain_arm(name: &str, draws: u32) -> ScenarioSpec {
        let mut spec = ScenarioSpec::domain_battery()
            .into_iter()
            .find(|s| s.name == name)
            .expect("battery arm exists");
        quick(&mut spec);
        spec.workload.draws = draws;
        spec
    }

    #[test]
    fn domain_outage_measures_degradation_and_adaptive_recovery() {
        let baseline = quick_domain_arm("domain-outage-baseline", 1_500);
        let adaptive = quick_domain_arm("domain-outage-adaptive", 1_500);
        let base = run_scenario_seed(&baseline, Backend::Chord, 51);
        let resilient = run_scenario_seed(&adaptive, Backend::Chord, 51);

        // Both arms ran the same outage window: [0.25, 0.75) of 1500.
        assert_eq!(base.outage_draws, 750);
        assert_eq!(resilient.outage_draws, 750);
        // A quarter of the ring dying as one arc must actually hurt the
        // plain arm (dead successor chains longer than r fail routes)...
        assert!(
            base.outage_success_ratio < 0.99,
            "baseline survived the outage unscathed: {}",
            base.outage_success_ratio
        );
        // ...while retry + fallback routing holds the SLO through it.
        assert!(
            resilient.outage_success_ratio >= 0.99,
            "adaptive arm broke the SLO: {}",
            resilient.outage_success_ratio
        );
        assert!(resilient.outage_success_ratio > base.outage_success_ratio);
        // Degradation is paid for and attributed, not free.
        assert!(resilient.counters["lookup.retries"] > 0);
        assert!(resilient.counters["lookup.fallback_depth"] > 0);
        // Two transitions (crash, heal) over two domains each.
        assert_eq!(base.counters["domain.events"], 4);
        assert_eq!(resilient.counters["domain.events"], 4);
        // Outage runs stay a pure function of (spec, backend, seed).
        assert_eq!(run_scenario_seed(&adaptive, Backend::Chord, 51), resilient);
        assert_eq!(run_scenario_seed(&baseline, Backend::Chord, 51), base);
    }

    #[test]
    fn domain_outage_breaches_the_success_slo_attributed_to_domains() {
        // 2000 draws put the outage edges on window boundaries: window 0
        // clean, windows 1–2 under the outage, window 3 healed.
        let spec = quick_domain_arm("domain-outage-baseline", 2_000);
        let r = run_scenario_seed(&spec, Backend::Chord, 53);
        assert!(r.health_breaches >= 1, "the outage must be detected");
        assert!(r.time_to_detect >= 0);
        assert!(
            r.time_to_recover >= 0,
            "the healed final window must confirm recovery: {:?}",
            r.health_events
        );
        let success_breach = r
            .health_events
            .iter()
            .find(|e| e.contains("breach success_ratio"))
            .unwrap_or_else(|| panic!("no success-ratio breach in {:?}", r.health_events));
        // The breach is attributed to the crashed domain labels.
        assert!(
            success_breach.contains("nodes=[0000000000000000,0000000000000001]"),
            "{success_breach}"
        );
        // The success-ratio gauge rides the longitudinal series.
        let success = &r.series["success_ratio"];
        assert_eq!(success.len() as u64, r.watchdog_windows);
        assert!(success.iter().any(|&v| v < 0.99), "{success:?}");
        assert!(
            success.last().is_some_and(|&v| v >= 0.99),
            "healed window must close clean: {success:?}"
        );
    }

    #[test]
    fn retry_without_outage_changes_no_accounting() {
        // A chord-only honest spec with the full adaptive arm on, no
        // domain structure: every draw succeeds the plain way, so the
        // retry/fallback counters must stay zero and the record must be
        // identical to the plain arm's except for those counter keys.
        let mut plain = ScenarioSpec::preset_honest_static();
        quick(&mut plain);
        plain.backends = vec![Backend::Chord];
        let mut armed = plain.clone();
        armed.adaptive = crate::AdaptiveRoutingSpec {
            peer_scoring: false,
            retry: true,
        };
        let p = run_scenario_seed(&plain, Backend::Chord, 59);
        let a = run_scenario_seed(&armed, Backend::Chord, 59);
        // The snapshot omits untouched counters, so "the retry machinery
        // never fired" reads as the keys being absent entirely — and the
        // whole counter map matching the plain arm's.
        assert!(!a.counters.contains_key("lookup.retries"));
        assert!(!a.counters.contains_key("lookup.fallback_depth"));
        assert_eq!(a.counters, p.counters);
        assert_eq!(a.outage_draws, 0);
        assert_eq!(a.outage_success_ratio, 1.0);
        assert_eq!(a.samples_ok, p.samples_ok);
        assert_eq!(a.mean_messages, p.mean_messages);
        assert_eq!(a.tv_from_uniform, p.tv_from_uniform);
        assert_eq!(a.series, p.series);
    }

    #[test]
    fn defended_draws_are_attributed_with_tail_costs() {
        let mut spec = ScenarioSpec::preset_sybil_arc_capture().with_defense(3);
        quick(&mut spec);
        let r = run_scenario_seed(&spec, Backend::Chord, 43);
        // Quorum redundancy multiplies the per-draw message tail over the
        // mean: p99 must sit at or above the defended mean cost.
        assert!(r.draw_msgs_p99 as f64 >= r.mean_messages);
        assert!(r.counters.contains_key("lookup.hops"));
    }

    #[test]
    fn chord_latency_spec_scales_accounted_latency_with_messages() {
        // Regression for the silent no-op this PR fixes: before the
        // `chord.latency` knob existed, run_chord never called
        // `with_latency`, so every chord arm ran at the unit-constant
        // model regardless of intent. Under `Constant{ticks}` every
        // message costs exactly `ticks`, so the accounted draw latency
        // must be exactly `ticks ×` the message count — and the unit arm
        // must differ from the scaled arm in latency *only*.
        let mut unit = ScenarioSpec::preset_honest_static();
        quick(&mut unit);
        unit.backends = vec![Backend::Chord];
        let mut scaled = unit.clone();
        scaled.chord.latency = Some(crate::LatencySpec::Constant { ticks: 7 });
        let u = run_scenario_seed(&unit, Backend::Chord, 61);
        let s = run_scenario_seed(&scaled, Backend::Chord, 61);
        assert!(s.samples_ok > 0);
        assert!(
            (s.mean_latency - 7.0 * s.mean_messages).abs() < 1e-9,
            "constant(7) must charge 7 ticks per message: latency {} messages {}",
            s.mean_latency,
            s.mean_messages
        );
        // Routing is latency-independent: same draws, same messages.
        assert_eq!(s.samples_ok, u.samples_ok);
        assert_eq!(s.mean_messages, u.mean_messages);
        assert!((u.mean_latency - u.mean_messages).abs() < 1e-9);
    }

    fn quick_engine_arm(name: &str) -> ScenarioSpec {
        let mut spec = ScenarioSpec::engine_battery()
            .into_iter()
            .find(|s| s.name == name)
            .expect("battery arm exists");
        spec.n_initial = 128;
        spec.workload.draws = 400;
        spec
    }

    #[test]
    fn engine_phase_detects_the_slow_sector_and_replays_byte_identically() {
        let baseline = quick_engine_arm("engine-slowdomain-baseline");
        let adaptive = quick_engine_arm("engine-slowdomain-adaptive");
        let base = run_scenario_seed(&baseline, Backend::Chord, 71);
        let resilient = run_scenario_seed(&adaptive, Backend::Chord, 71);

        for (r, name) in [(&base, "baseline"), (&resilient, "adaptive")] {
            // Exactly-once: every submitted lookup completed (the slow
            // sector is alive, so nothing may fail).
            assert_eq!(r.engine_lookups, 2_000, "{name}");
            assert_eq!(r.engine_completed, r.engine_lookups, "{name}");
            // The delay fault is *detected* by the in-flight-age rule —
            // within two windows of the slowdown starting — and the
            // rule recovers once the sector speeds back up.
            assert!(
                (0..=2).contains(&r.engine_ttd),
                "{name} ttd {} events {:?}",
                r.engine_ttd,
                r.health_events
            );
            assert!(
                r.engine_ttr >= 0,
                "{name} must confirm recovery: {:?}",
                r.health_events
            );
            assert!(
                r.health_events
                    .iter()
                    .any(|e| e.contains("breach inflight_age")),
                "{name}: {:?}",
                r.health_events
            );
            // The age gauge rides the longitudinal series.
            assert!(r.series.contains_key("engine_age_p99"), "{name}");
            assert!(!r.engine_digest.is_empty(), "{name}");
            assert!(r.engine_age_p999 >= r.engine_age_p99, "{name}");
            assert!(r.engine_age_p99 >= r.engine_age_p50, "{name}");
        }
        // Deadlines fired on the adaptive arm (at this seed) and
        // preempted late walks into the retry tiers — every preempted
        // walk still completed exactly once (checked above). The tail
        // itself is reported, not gated against the baseline: with a
        // regional delay fault the slow owner probe is unavoidable, so
        // preemption bounds *attempts*, not the worst-case age.
        assert!(resilient.engine_timeouts > 0);
        assert_eq!(
            resilient.counters["engine.timeouts"],
            resilient.engine_timeouts
        );
        // The fault is visible in both arms' tails: the p999 completion
        // age carries at least one 32×-slowed 4-tick hop.
        assert!(base.engine_age_p999 >= 128);
        assert!(resilient.engine_age_p999 >= 128);
        // Engine runs stay a pure function of (spec, backend, seed):
        // the whole record — engine digest included — replays.
        assert_eq!(run_scenario_seed(&adaptive, Backend::Chord, 71), resilient);
        assert_eq!(run_scenario_seed(&baseline, Backend::Chord, 71), base);
    }

    #[test]
    fn engine_free_specs_carry_no_engine_columns() {
        let mut spec = ScenarioSpec::preset_honest_static();
        quick(&mut spec);
        for backend in [Backend::Oracle, Backend::Chord] {
            let r = run_scenario_seed(&spec, backend, 73);
            assert_eq!(r.engine_lookups, 0);
            assert_eq!(r.engine_completed, 0);
            assert_eq!(r.engine_ttd, -1);
            assert_eq!(r.engine_ttr, 0);
            assert!(r.engine_digest.is_empty());
            assert!(!r.series.contains_key("engine_age_p99"));
        }
    }
}
