//! The declarative scenario schema.
//!
//! A [`ScenarioSpec`] is plain data — serde-round-trippable, diffable,
//! checkable into a repo — that fully determines a simulation once a seed
//! is fixed: ring placement × adversary × churn schedule × workload ×
//! backends. `ScenarioSpec::presets()` ships the standard adversarial
//! battery every sweep starts from.

use serde::{Deserialize, Serialize};

/// Which DHT implementation answers the paper's two primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// `peer_sampling::OracleDht`: direct sorted-array answers with
    /// synthetic costs — the idealized control arm. Churn is applied to
    /// the membership set only (the oracle has no routing state to go
    /// stale) and adversaries cannot subvert it (there is no routing to
    /// lie on), so Oracle-vs-Chord deltas isolate the cost of realism.
    Oracle,
    /// `chord::ChordDht`: real iterative routing over a simulated Chord
    /// overlay, with churn damaging routing state and Byzantine fault
    /// plans injected into `find_successor` / `next`.
    Chord,
}

impl Backend {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Oracle => "oracle",
            Backend::Chord => "chord",
        }
    }
}

/// How peer points are placed on the ring.
///
/// The paper assumes i.i.d. uniform placement (the random-oracle hash
/// assumption); the other models deliberately break it, because topology
/// shape alone can flip cost results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementModel {
    /// I.i.d. uniform points — the paper's model.
    Uniform,
    /// Peers huddle in `clusters` equally-spaced clusters, each spanning
    /// `spread_fraction` of the ring. Produces huge empty arcs and dense
    /// runs of tiny arcs — the geometry that stresses supplementation
    /// scans hardest.
    Clustered {
        /// Number of cluster centers (equally spaced).
        clusters: usize,
        /// Fraction of the ring each cluster's points spread over.
        spread_fraction: f64,
    },
    /// Power-law-skewed placement: points land at `M · uᵉ` for uniform
    /// `u`, so mass concentrates near the ring origin as `exponent`
    /// grows above 1 (a model of correlated identifiers / bad hashes).
    Skewed {
        /// Concentration exponent (1 = uniform).
        exponent: f64,
    },
}

/// Who misbehaves, and how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversaryModel {
    /// Every peer follows the protocol.
    Honest,
    /// A fraction of peers misreport routing answers (see
    /// `chord::FaultPlan`): lookups reaching them are captured
    /// (`claim_ownership`) and/or their successor pointer eclipses the
    /// true next peer (`eclipse_next`). Chord-only; the oracle backend
    /// has no routing to subvert.
    ByzantineRouters {
        /// Fraction of live peers that are Byzantine, in `[0, 1]`.
        fraction: f64,
        /// Whether Byzantine hops capture `find_successor`.
        claim_ownership: bool,
        /// Whether Byzantine peers misreport `next(p)`.
        eclipse_next: bool,
    },
}

/// One phase of a churn schedule, in ticks (serde-friendly mirror of
/// `simnet::churn::ChurnPhase`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPhaseSpec {
    /// Phase length in ticks.
    pub duration_ticks: u64,
    /// Mean node arrivals per 1000 ticks.
    pub arrivals_per_1000_ticks: f64,
    /// Mean session lifetime in ticks for nodes joining in this phase.
    pub mean_lifetime_ticks: u64,
    /// Fraction of departures that are silent crashes, in `[0, 1]`.
    pub crash_fraction: f64,
}

/// Membership dynamics over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnModel {
    /// No membership changes: the paper's static-ring setting.
    Static,
    /// Stationary M/M/∞ churn for `horizon_ticks`.
    Poisson {
        /// Mean node arrivals per 1000 ticks.
        arrivals_per_1000_ticks: f64,
        /// Mean session lifetime in ticks.
        mean_lifetime_ticks: u64,
        /// Fraction of departures that are crashes, in `[0, 1]`.
        crash_fraction: f64,
        /// Total schedule length in ticks.
        horizon_ticks: u64,
    },
    /// Piecewise-stationary churn: storms, flash crowds, recoveries.
    Phased {
        /// The phases, run back to back.
        phases: Vec<ChurnPhaseSpec>,
    },
}

impl ChurnModel {
    /// Whether the model produces any membership events.
    pub fn is_static(&self) -> bool {
        matches!(self, ChurnModel::Static)
    }
}

/// What the sampling client does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Uniform-sample draws to attempt (after churn completes).
    pub draws: u32,
    /// Derive the sampler configuration from §2's network-size estimator
    /// running over the same backend (deployment mode) instead of from
    /// the true live count (oracle-knowledge mode).
    pub estimate_n: bool,
}

/// Sampler tuning knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerTuning {
    /// Multiplier applied to the known live count when `estimate_n` is
    /// off (models a stale or conservative `n_upper`).
    pub n_upper_inflation: f64,
    /// Rejection-loop retry cap per draw.
    pub max_trials: u32,
}

impl Default for SamplerTuning {
    fn default() -> SamplerTuning {
        SamplerTuning {
            n_upper_inflation: 1.0,
            max_trials: 256,
        }
    }
}

/// Chord substrate tuning (ignored by the oracle backend).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChordTuning {
    /// Successor-list length `r`.
    pub successor_list_len: usize,
    /// Maintenance tick interval during churny runs.
    pub stabilize_every_ticks: u64,
}

impl Default for ChordTuning {
    fn default() -> ChordTuning {
        ChordTuning {
            successor_list_len: 8,
            stabilize_every_ticks: 250,
        }
    }
}

/// A complete, runnable scenario description.
///
/// # Example
///
/// ```
/// use scenarios::ScenarioSpec;
///
/// let spec = ScenarioSpec::preset_byzantine_routers();
/// let json = serde_json::to_string_pretty(&spec).unwrap();
/// let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
/// assert_eq!(back, spec);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (report key).
    pub name: String,
    /// Initial ring size before churn.
    pub n_initial: usize,
    /// Ring-placement model.
    pub placement: PlacementModel,
    /// Adversary model.
    pub adversary: AdversaryModel,
    /// Churn schedule.
    pub churn: ChurnModel,
    /// Client workload.
    pub workload: WorkloadMix,
    /// Sampler tuning.
    pub sampler: SamplerTuning,
    /// Chord substrate tuning.
    pub chord: ChordTuning,
    /// Backends to run the spec against.
    pub backends: Vec<Backend>,
}

impl ScenarioSpec {
    /// A baseline spec: uniform placement, honest, static, both backends.
    fn baseline(name: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            n_initial: 256,
            placement: PlacementModel::Uniform,
            adversary: AdversaryModel::Honest,
            churn: ChurnModel::Static,
            workload: WorkloadMix {
                draws: 2_000,
                estimate_n: false,
            },
            sampler: SamplerTuning::default(),
            chord: ChordTuning::default(),
            backends: vec![Backend::Oracle, Backend::Chord],
        }
    }

    /// The paper's own setting: static honest uniform ring. Everything
    /// else is measured against this control.
    pub fn preset_honest_static() -> ScenarioSpec {
        ScenarioSpec::baseline("honest-static")
    }

    /// Crash-heavy Poisson churn: sessions are short and 90% of
    /// departures are silent crashes, so routing state decays as fast as
    /// stabilization can repair it.
    pub fn preset_crash_churn() -> ScenarioSpec {
        ScenarioSpec {
            churn: ChurnModel::Poisson {
                arrivals_per_1000_ticks: 40.0,
                mean_lifetime_ticks: 8_000,
                crash_fraction: 0.9,
                horizon_ticks: 20_000,
            },
            ..ScenarioSpec::baseline("crash-churn")
        }
    }

    /// 10% of peers are Byzantine routers: they capture lookups that
    /// route through them (forging their reported position) and eclipse
    /// their true successor.
    pub fn preset_byzantine_routers() -> ScenarioSpec {
        ScenarioSpec {
            adversary: AdversaryModel::ByzantineRouters {
                fraction: 0.10,
                claim_ownership: true,
                eclipse_next: true,
            },
            ..ScenarioSpec::baseline("byzantine-routers")
        }
    }

    /// Pathological geometry: peers huddle in 8 tight clusters, leaving
    /// huge empty arcs — the adversarial placement for supplementation
    /// scans and `n`-estimation.
    pub fn preset_clustered_ring() -> ScenarioSpec {
        ScenarioSpec {
            placement: PlacementModel::Clustered {
                clusters: 8,
                spread_fraction: 0.002,
            },
            ..ScenarioSpec::baseline("clustered-ring")
        }
    }

    /// A flash crowd: calm traffic, then an arrival burst at 20× the base
    /// rate (long-lived joiners, no crashes), then calm again.
    pub fn preset_flash_crowd() -> ScenarioSpec {
        ScenarioSpec {
            churn: ChurnModel::Phased {
                phases: vec![
                    ChurnPhaseSpec {
                        duration_ticks: 5_000,
                        arrivals_per_1000_ticks: 5.0,
                        mean_lifetime_ticks: 200_000,
                        crash_fraction: 0.1,
                    },
                    ChurnPhaseSpec {
                        duration_ticks: 5_000,
                        arrivals_per_1000_ticks: 100.0,
                        mean_lifetime_ticks: 200_000,
                        crash_fraction: 0.0,
                    },
                    ChurnPhaseSpec {
                        duration_ticks: 5_000,
                        arrivals_per_1000_ticks: 5.0,
                        mean_lifetime_ticks: 200_000,
                        crash_fraction: 0.1,
                    },
                ],
            },
            ..ScenarioSpec::baseline("flash-crowd")
        }
    }

    /// The scale workload: a 10,000-peer ring (10⁴–10⁵ with the sweep
    /// harness's scale knob) under light crash churn, exercising bulk
    /// construction and the incremental ground-truth index rather than the
    /// adversary models. Fewer draws than the small presets — at this size
    /// the cost of interest is building and churning the ring itself.
    pub fn preset_scale_stress() -> ScenarioSpec {
        ScenarioSpec {
            n_initial: 10_000,
            churn: ChurnModel::Poisson {
                arrivals_per_1000_ticks: 50.0,
                mean_lifetime_ticks: 100_000,
                crash_fraction: 0.5,
                horizon_ticks: 10_000,
            },
            workload: WorkloadMix {
                draws: 1_000,
                estimate_n: false,
            },
            ..ScenarioSpec::baseline("scale-stress")
        }
    }

    /// The standard adversarial battery, one preset per model family.
    pub fn presets() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::preset_honest_static(),
            ScenarioSpec::preset_crash_churn(),
            ScenarioSpec::preset_byzantine_routers(),
            ScenarioSpec::preset_clustered_ring(),
            ScenarioSpec::preset_flash_crowd(),
            ScenarioSpec::preset_scale_stress(),
        ]
    }

    /// Validates internal consistency, returning every problem found.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.name.is_empty() {
            problems.push("name must be non-empty".to_string());
        }
        if self.n_initial < 2 {
            problems.push(format!("n_initial {} < 2", self.n_initial));
        }
        if self.backends.is_empty() {
            problems.push("backends must be non-empty".to_string());
        }
        if self.workload.draws == 0 {
            problems.push("workload.draws must be positive".to_string());
        }
        if self.sampler.max_trials == 0 {
            problems.push("sampler.max_trials must be positive".to_string());
        }
        if self.sampler.n_upper_inflation < 1.0 || !self.sampler.n_upper_inflation.is_finite() {
            problems.push(format!(
                "sampler.n_upper_inflation {} < 1",
                self.sampler.n_upper_inflation
            ));
        }
        match &self.placement {
            PlacementModel::Uniform => {}
            PlacementModel::Clustered {
                clusters,
                spread_fraction,
            } => {
                if *clusters == 0 {
                    problems.push("clustered placement needs >= 1 cluster".to_string());
                }
                if !(*spread_fraction > 0.0 && *spread_fraction <= 1.0) {
                    problems.push(format!("spread_fraction {spread_fraction} outside (0, 1]"));
                }
            }
            PlacementModel::Skewed { exponent } => {
                if !(*exponent > 0.0 && exponent.is_finite()) {
                    problems.push(format!("skew exponent {exponent} must be positive"));
                }
            }
        }
        if let AdversaryModel::ByzantineRouters { fraction, .. } = &self.adversary {
            if !(0.0..=1.0).contains(fraction) {
                problems.push(format!("byzantine fraction {fraction} outside [0, 1]"));
            }
        }
        match &self.churn {
            ChurnModel::Static => {}
            ChurnModel::Poisson {
                arrivals_per_1000_ticks,
                mean_lifetime_ticks,
                crash_fraction,
                horizon_ticks,
            } => {
                if *arrivals_per_1000_ticks <= 0.0 || arrivals_per_1000_ticks.is_nan() {
                    problems.push("poisson arrival rate must be positive".to_string());
                }
                if *mean_lifetime_ticks == 0 {
                    problems.push("poisson mean lifetime must be positive".to_string());
                }
                if !(0.0..=1.0).contains(crash_fraction) {
                    problems.push(format!("crash fraction {crash_fraction} outside [0, 1]"));
                }
                if *horizon_ticks == 0 {
                    problems.push("poisson horizon must be positive".to_string());
                }
            }
            ChurnModel::Phased { phases } => {
                if phases.is_empty() {
                    problems.push("phased churn needs >= 1 phase".to_string());
                }
                for (i, p) in phases.iter().enumerate() {
                    if p.duration_ticks == 0 {
                        problems.push(format!("phase {i} duration must be positive"));
                    }
                    if p.arrivals_per_1000_ticks <= 0.0 || p.arrivals_per_1000_ticks.is_nan() {
                        problems.push(format!("phase {i} arrival rate must be positive"));
                    }
                    if p.mean_lifetime_ticks == 0 {
                        problems.push(format!("phase {i} mean lifetime must be positive"));
                    }
                    if !(0.0..=1.0).contains(&p.crash_fraction) {
                        problems.push(format!("phase {i} crash fraction outside [0, 1]"));
                    }
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_distinct_and_cover_the_required_models() {
        let presets = ScenarioSpec::presets();
        assert!(presets.len() >= 4, "the battery must ship >= 4 models");
        let names: std::collections::HashSet<_> = presets.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), presets.len(), "preset names must be unique");
        for spec in &presets {
            spec.validate().unwrap_or_else(|problems| {
                panic!("{} invalid: {problems:?}", spec.name);
            });
            assert!(spec.backends.contains(&Backend::Oracle));
            assert!(spec.backends.contains(&Backend::Chord));
        }
        // The four required model families.
        assert!(presets.iter().any(|s| s.adversary == AdversaryModel::Honest
            && s.churn.is_static()
            && s.placement == PlacementModel::Uniform));
        assert!(presets.iter().any(
            |s| matches!(&s.churn, ChurnModel::Poisson { crash_fraction, .. }
                if *crash_fraction > 0.5)
        ));
        assert!(presets
            .iter()
            .any(|s| matches!(s.adversary, AdversaryModel::ByzantineRouters { .. })));
        assert!(presets
            .iter()
            .any(|s| matches!(s.placement, PlacementModel::Clustered { .. })));
    }

    #[test]
    fn every_preset_roundtrips_through_json() {
        for spec in ScenarioSpec::presets() {
            let compact = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&compact).unwrap();
            assert_eq!(back, spec, "compact roundtrip of {}", spec.name);
            let pretty = serde_json::to_string_pretty(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&pretty).unwrap();
            assert_eq!(back, spec, "pretty roundtrip of {}", spec.name);
        }
    }

    #[test]
    fn handwritten_json_parses() {
        let text = r#"{
            "name": "tiny",
            "n_initial": 32,
            "placement": {"Skewed": {"exponent": 3.0}},
            "adversary": "Honest",
            "churn": "Static",
            "workload": {"draws": 100, "estimate_n": true},
            "sampler": {"n_upper_inflation": 2.0, "max_trials": 64},
            "chord": {"successor_list_len": 4, "stabilize_every_ticks": 100},
            "backends": ["Oracle", "Chord"]
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(text).unwrap();
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.placement, PlacementModel::Skewed { exponent: 3.0 });
        assert!(spec.workload.estimate_n);
        spec.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut spec = ScenarioSpec::preset_honest_static();
        spec.name.clear();
        spec.n_initial = 1;
        spec.backends.clear();
        spec.adversary = AdversaryModel::ByzantineRouters {
            fraction: 2.0,
            claim_ownership: true,
            eclipse_next: false,
        };
        let problems = spec.validate().unwrap_err();
        assert!(problems.len() >= 4, "{problems:?}");
        // Non-finite inflation must be rejected, not silently saturate.
        let mut inf = ScenarioSpec::preset_honest_static();
        inf.sampler.n_upper_inflation = f64::INFINITY;
        assert!(inf.validate().is_err());
        let mut nan = ScenarioSpec::preset_honest_static();
        nan.sampler.n_upper_inflation = f64::NAN;
        assert!(nan.validate().is_err());
    }

    #[test]
    fn scale_stress_preset_is_large_churny_and_paired() {
        let spec = ScenarioSpec::preset_scale_stress();
        spec.validate().unwrap();
        assert!(spec.n_initial >= 10_000);
        assert!(!spec.churn.is_static(), "scale must exercise churn");
        assert_eq!(spec.backends, vec![Backend::Oracle, Backend::Chord]);
    }

    #[test]
    fn points_serialize_as_plain_numbers_in_reports() {
        // keyspace's serde feature (tuple-struct derive): a Point is a
        // bare coordinate in JSON, not a wrapper object.
        let p = keyspace::Point::new(1234);
        assert_eq!(serde_json::to_string(&p).unwrap(), "1234");
        let back: keyspace::Point = serde_json::from_str("1234").unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Oracle.name(), "oracle");
        assert_eq!(Backend::Chord.name(), "chord");
    }
}
