//! The declarative scenario schema.
//!
//! A [`ScenarioSpec`] is plain data — serde-round-trippable, diffable,
//! checkable into a repo — that fully determines a simulation once a seed
//! is fixed: ring placement × adversary × churn schedule × workload ×
//! backends. `ScenarioSpec::presets()` ships the standard adversarial
//! battery every sweep starts from.

use serde::{Deserialize, Serialize};

/// Which DHT implementation answers the paper's two primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// `peer_sampling::OracleDht`: direct sorted-array answers with
    /// synthetic costs — the idealized control arm. Churn is applied to
    /// the membership set only (the oracle has no routing state to go
    /// stale) and adversaries cannot subvert it (there is no routing to
    /// lie on), so Oracle-vs-Chord deltas isolate the cost of realism.
    Oracle,
    /// The oracle with a *bounded-lag* membership view: the client
    /// samples against the membership as it stood `lag_ticks` before the
    /// churn horizon, while correctness is judged against the current
    /// population. Draws that land on peers that have since departed
    /// fail (the contact bounces); peers that joined inside the lag
    /// window are unreachable. Sitting between the fresh oracle and
    /// Chord, this arm separates *staleness* cost from *routing* cost:
    /// oracle-vs-stale is pure staleness, stale-vs-chord is pure
    /// routing-repair.
    StaleOracle {
        /// How many ticks behind the churn horizon the view lags.
        lag_ticks: u64,
    },
    /// `chord::ChordDht`: real iterative routing over a simulated Chord
    /// overlay, with churn damaging routing state and Byzantine fault
    /// plans injected into `find_successor` / `next`.
    Chord,
}

impl Backend {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Oracle => "oracle",
            Backend::StaleOracle { .. } => "stale-oracle",
            Backend::Chord => "chord",
        }
    }
}

/// How peer points are placed on the ring.
///
/// The paper assumes i.i.d. uniform placement (the random-oracle hash
/// assumption); the other models deliberately break it, because topology
/// shape alone can flip cost results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementModel {
    /// I.i.d. uniform points — the paper's model.
    Uniform,
    /// Peers huddle in `clusters` equally-spaced clusters, each spanning
    /// `spread_fraction` of the ring. Produces huge empty arcs and dense
    /// runs of tiny arcs — the geometry that stresses supplementation
    /// scans hardest.
    Clustered {
        /// Number of cluster centers (equally spaced).
        clusters: usize,
        /// Fraction of the ring each cluster's points spread over.
        spread_fraction: f64,
    },
    /// Power-law-skewed placement: points land at `M · uᵉ` for uniform
    /// `u`, so mass concentrates near the ring origin as `exponent`
    /// grows above 1 (a model of correlated identifiers / bad hashes).
    Skewed {
        /// Concentration exponent (1 = uniform).
        exponent: f64,
    },
}

/// A coordinated coalition attack (serde mirror of
/// `adversary::CoalitionStrategy`; see that crate's README for the
/// threat-model table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoalitionStrategySpec {
    /// Sybils seize the largest honest gap-arcs: optimal placement at gap
    /// ends, self-reported positions forged to claim full gap measure,
    /// routed lookups through members captured.
    SybilArcCapture,
    /// Corrupted incumbents lie only about their own position, only for
    /// lookups they genuinely own — the stealthiest strategy.
    AdaptiveArcLiars,
    /// Sybils shadow a run of consecutive honest victims and eclipse them
    /// from every supplementation scan.
    EclipseRun,
}

impl CoalitionStrategySpec {
    /// Stable lowercase name used in reports and preset names.
    pub fn name(self) -> &'static str {
        self.to_strategy().name()
    }

    /// The executable strategy this spec names.
    pub fn to_strategy(self) -> adversary::CoalitionStrategy {
        match self {
            CoalitionStrategySpec::SybilArcCapture => adversary::CoalitionStrategy::SybilArcCapture,
            CoalitionStrategySpec::AdaptiveArcLiars => {
                adversary::CoalitionStrategy::AdaptiveArcLiars
            }
            CoalitionStrategySpec::EclipseRun => adversary::CoalitionStrategy::EclipseRun,
        }
    }

    /// Every strategy, in battery order.
    pub fn all() -> [CoalitionStrategySpec; 3] {
        [
            CoalitionStrategySpec::SybilArcCapture,
            CoalitionStrategySpec::AdaptiveArcLiars,
            CoalitionStrategySpec::EclipseRun,
        ]
    }
}

/// Who misbehaves, and how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversaryModel {
    /// Every peer follows the protocol.
    Honest,
    /// A fraction of peers misreport routing answers (see
    /// `chord::FaultPlan`): lookups reaching them are captured
    /// (`claim_ownership`) and/or their successor pointer eclipses the
    /// true next peer (`eclipse_next`). Chord-only; the oracle backend
    /// has no routing to subvert.
    ByzantineRouters {
        /// Fraction of live peers that are Byzantine, in `[0, 1]`.
        fraction: f64,
        /// Whether Byzantine hops capture `find_successor`.
        claim_ownership: bool,
        /// Whether Byzantine peers misreport `next(p)`.
        eclipse_next: bool,
    },
    /// A coordinated coalition: placement and per-node lies compiled by
    /// `adversary::compile_coalition` against the honest ring. Sybil
    /// strategies *add* members (so the coalition is `fraction` of the
    /// final population); corrupt-existing strategies convert incumbents.
    /// Chord-only and static-churn-only: the coalition places itself
    /// against a known ring, which churn would silently invalidate.
    Coalition {
        /// The coordinated strategy.
        strategy: CoalitionStrategySpec,
        /// Coalition share of the final population, in `(0, 0.5)`.
        fraction: f64,
    },
}

/// The client-side defense arm (see `adversary::DefendedSampler`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseModel {
    /// The paper's plain sampler: trust every answer.
    None,
    /// Verified redundant sampling: every resolution is issued through
    /// `entries` disjoint-entry views in verified-position mode, and a
    /// strict majority must agree. Chord-only (the oracle cannot lie).
    Quorum {
        /// Number of disjoint entry views (odd values make the strict
        /// majority cleanest; 3 tolerates one captured route).
        entries: usize,
    },
}

impl DefenseModel {
    /// Whether any defense is active.
    pub fn is_active(&self) -> bool {
        !matches!(self, DefenseModel::None)
    }
}

/// One phase of a churn schedule, in ticks (serde-friendly mirror of
/// `simnet::churn::ChurnPhase`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPhaseSpec {
    /// Phase length in ticks.
    pub duration_ticks: u64,
    /// Mean node arrivals per 1000 ticks.
    pub arrivals_per_1000_ticks: f64,
    /// Mean session lifetime in ticks for nodes joining in this phase.
    pub mean_lifetime_ticks: u64,
    /// Fraction of departures that are silent crashes, in `[0, 1]`.
    pub crash_fraction: f64,
}

/// Membership dynamics over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnModel {
    /// No membership changes: the paper's static-ring setting.
    Static,
    /// Stationary M/M/∞ churn for `horizon_ticks`.
    Poisson {
        /// Mean node arrivals per 1000 ticks.
        arrivals_per_1000_ticks: f64,
        /// Mean session lifetime in ticks.
        mean_lifetime_ticks: u64,
        /// Fraction of departures that are crashes, in `[0, 1]`.
        crash_fraction: f64,
        /// Total schedule length in ticks.
        horizon_ticks: u64,
    },
    /// Piecewise-stationary churn: storms, flash crowds, recoveries.
    Phased {
        /// The phases, run back to back.
        phases: Vec<ChurnPhaseSpec>,
    },
}

impl ChurnModel {
    /// Whether the model produces any membership events.
    pub fn is_static(&self) -> bool {
        matches!(self, ChurnModel::Static)
    }
}

/// What the sampling client does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Uniform-sample draws to attempt (after churn completes).
    pub draws: u32,
    /// Derive the sampler configuration from §2's network-size estimator
    /// running over the same backend (deployment mode) instead of from
    /// the true live count (oracle-knowledge mode).
    pub estimate_n: bool,
}

/// Sampler tuning knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerTuning {
    /// Multiplier applied to the known live count when `estimate_n` is
    /// off (models a stale or conservative `n_upper`).
    pub n_upper_inflation: f64,
    /// Rejection-loop retry cap per draw.
    pub max_trials: u32,
}

impl Default for SamplerTuning {
    fn default() -> SamplerTuning {
        SamplerTuning {
            n_upper_inflation: 1.0,
            max_trials: 256,
        }
    }
}

/// How the chord overlay spends maintenance work during churny runs
/// (serde mirror of `chord::MaintenanceBudget` plus the classic path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaintenanceSpec {
    /// The classic full round: every live node stabilizes and fixes one
    /// finger level per tick — O(n) routed lookups per round, the
    /// pre-batching behaviour (and still the default).
    FullRefresh,
    /// Batched incremental maintenance, draining the whole dirty set
    /// each tick: amortized O(changes · log n) work per round. The only
    /// way 10⁷-node chord arms fit a wall-clock budget.
    BatchedDrain,
    /// Batched incremental maintenance under a per-tick entry cap:
    /// at most `budget_per_round` dirty entries (stale
    /// successor/predecessor flags + finger levels) repaired per tick.
    /// Deliberately lets a backlog stand, trading staleness (surfaced as
    /// `maintenance_backlog` / `finger_staleness` in records) for work;
    /// `0` is pure staleness.
    Batched {
        /// Dirty entries repaired per maintenance tick.
        budget_per_round: u32,
    },
}

impl MaintenanceSpec {
    /// The chord budget this spec compiles to; `None` selects the
    /// classic full-refresh round.
    pub fn budget(self) -> Option<chord::MaintenanceBudget> {
        match self {
            MaintenanceSpec::FullRefresh => None,
            MaintenanceSpec::BatchedDrain => Some(chord::MaintenanceBudget::unlimited()),
            MaintenanceSpec::Batched { budget_per_round } => {
                Some(chord::MaintenanceBudget::per_round(budget_per_round))
            }
        }
    }
}

/// Observability knobs (see the `telemetry` crate and
/// `docs/OBSERVABILITY.md`).
///
/// Counters and the hop histogram are always on — they are lock-free
/// atomics whose cost is unmeasurable against routed lookups — so the only
/// knob is span-style lookup tracing, which allocates per-hop records and
/// is therefore opt-in. Tracing never perturbs the simulation: traces draw
/// nothing from any RNG and add no messages or latency, so a record stays
/// a pure function of `(spec, backend, seed)` with tracing on or off (only
/// the report's `trace_digest` field changes, from empty to populated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Record the full hop path of every `find_successor` walk into the
    /// flight-recorder ring buffer (chord backends only; the oracle does
    /// not route).
    pub trace_lookups: bool,
    /// Flight-recorder capacity in traces: the ring keeps the most recent
    /// this-many lookups for post-mortem dumps. The trace *digest* covers
    /// every trace ever pushed, so it is capacity-independent.
    pub flight_recorder_capacity: u32,
}

impl Default for TelemetrySpec {
    fn default() -> TelemetrySpec {
        TelemetrySpec {
            trace_lookups: false,
            flight_recorder_capacity: 64,
        }
    }
}

/// Correlated failure domains and a scripted mid-workload outage.
///
/// The ring is partitioned into `domains` equal sectors (racks/regions;
/// see `simnet::DomainMap`) and domains `0..crash_domains` crash *as a
/// unit* partway through the draw loop: every live member dies in the
/// same instant at `outage_start` (a fraction of the configured draws)
/// and the survivors rejoin at `outage_end`. Unlike Poisson churn —
/// independent per-node failures with maintenance running throughout —
/// this is the correlated regime the paper's i.i.d. assumptions exclude:
/// a contiguous arc of the ring vanishes at once, successor lists die
/// in blocks, and lookups must degrade through fallbacks until repair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureDomainSpec {
    /// Number of equal ring sectors (racks). Must be >= 2.
    pub domains: u32,
    /// How many sectors (domains `0..crash_domains`) crash together.
    /// Must be >= 1 and < `domains`, so some of the ring survives.
    pub crash_domains: u32,
    /// Draw-loop fraction in `[0, 1)` at which the outage begins.
    pub outage_start: f64,
    /// Draw-loop fraction in `(outage_start, 1]` at which the crashed
    /// members rejoin and maintenance drains the repair backlog.
    pub outage_end: f64,
}

impl FailureDomainSpec {
    /// Fraction of the ring (by sector measure) the outage takes down.
    pub fn crashed_fraction(&self) -> f64 {
        f64::from(self.crash_domains) / f64::from(self.domains.max(1))
    }
}

/// A serializable mirror of [`simnet::LatencyModel`]: per-message delay
/// distributions for the chord substrate. Specs carry this (plain data)
/// and compile it to the simnet model at run time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencySpec {
    /// Every message takes exactly `ticks` ticks.
    Constant {
        /// Per-message delay in ticks (clamped to >= 1 by the model).
        ticks: u64,
    },
    /// Uniform delay in `[lo, hi]` ticks.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Heavy-tailed log-normal delay around `median` ticks.
    LogNormal {
        /// Median delay in ticks.
        median: u64,
        /// Shape parameter sigma of the underlying normal.
        sigma: f64,
    },
}

impl LatencySpec {
    /// Compile to the simnet model the chord substrate samples from.
    pub fn to_model(self) -> simnet::LatencyModel {
        match self {
            LatencySpec::Constant { ticks } => simnet::LatencyModel::Constant(ticks),
            LatencySpec::Uniform { lo, hi } => simnet::LatencyModel::Uniform { lo, hi },
            LatencySpec::LogNormal { median, sigma } => {
                simnet::LatencyModel::LogNormal { median, sigma }
            }
        }
    }
}

/// A *delay* fault for the engine phase: `slow` of `domains` equal ring
/// sectors answer `factor`× late for a window of the engine phase. The
/// sector is alive — every lookup still succeeds — so crash-oriented
/// SLOs see nothing; only latency-tail and in-flight-age monitoring can
/// detect it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowDomainSpec {
    /// Number of equal ring sectors. Must be >= 2.
    pub domains: u32,
    /// How many sectors (domains `0..slow`) run slow. Must be >= 1 and
    /// < `domains`, so requests have somewhere fast to route through.
    pub slow: u32,
    /// Wall-clock delay multiplier for messages answered by slow-sector
    /// nodes. Must be >= 2 (1 would be a no-op arm).
    pub factor: u64,
    /// Engine-phase fraction in `[0, 1)` at which the slowdown starts.
    pub start_frac: f64,
    /// Engine-phase fraction in `(start_frac, 1]` at which it ends.
    pub end_frac: f64,
}

/// The async lookup-engine phase (chord-only): after the draw loop, a
/// batch of concurrent in-flight lookups is driven through
/// `chord::LookupEngine` — explicit messages over the simnet event
/// queue, per-request deadlines feeding the retry tiers — and the
/// completion-age tail is recorded and watchdog-monitored.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSpec {
    /// Max concurrently in-flight lookups (excess queues in a backlog).
    pub inflight: u32,
    /// Per-attempt deadline in ticks; a request whose answer is later
    /// than this re-enters the retry tiers.
    pub timeout_ticks: u64,
    /// Total lookups submitted to the engine phase.
    pub lookups: u32,
    /// Number of observation windows the engine phase is split into
    /// (each closes a telemetry window and feeds the watchdog).
    pub windows: u32,
    /// Simulated ticks per observation window.
    pub window_ticks: u64,
    /// Optional slow-sector delay fault injected mid-phase.
    pub slow: Option<SlowDomainSpec>,
}

impl Default for EngineSpec {
    fn default() -> EngineSpec {
        EngineSpec {
            inflight: 256,
            timeout_ticks: 512,
            lookups: 2_000,
            windows: 8,
            window_ticks: 256,
            slow: None,
        }
    }
}

/// Client/substrate resilience knobs for the chord backend: adaptive
/// peer scoring and retry/fallback routing (see `chord::PeerScores` and
/// `chord::RetryPolicy`). Chord-only — the oracle has no routing to
/// score or retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdaptiveRoutingSpec {
    /// Maintain per-peer EWMA responsiveness scores and rank alternative
    /// next-hops (lower finger levels) to probe penalized peers last.
    pub peer_scoring: bool,
    /// Retry failed lookups with deterministic backoff, then degrade
    /// through successor-walk and verified-quorum fallbacks instead of
    /// surfacing the error.
    pub retry: bool,
}

impl AdaptiveRoutingSpec {
    /// Whether any resilience knob is on.
    pub fn is_active(&self) -> bool {
        self.peer_scoring || self.retry
    }

    /// Both knobs on — the full graceful-degradation arm.
    pub fn full() -> AdaptiveRoutingSpec {
        AdaptiveRoutingSpec {
            peer_scoring: true,
            retry: true,
        }
    }
}

/// Chord substrate tuning (ignored by the oracle backend).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChordTuning {
    /// Successor-list length `r`.
    pub successor_list_len: usize,
    /// Maintenance tick interval during churny runs.
    pub stabilize_every_ticks: u64,
    /// What a maintenance tick does: classic full refresh, batched
    /// drain, or a budgeted batched round.
    pub maintenance: MaintenanceSpec,
    /// Per-message latency model for the chord substrate. `None` (the
    /// default, and what omitting the key in JSON reads as) keeps the
    /// unit-constant model, under which accounted latency equals the
    /// message count.
    pub latency: Option<LatencySpec>,
}

impl Default for ChordTuning {
    fn default() -> ChordTuning {
        ChordTuning {
            successor_list_len: 8,
            stabilize_every_ticks: 250,
            maintenance: MaintenanceSpec::FullRefresh,
            latency: None,
        }
    }
}

/// A complete, runnable scenario description.
///
/// # Example
///
/// ```
/// use scenarios::ScenarioSpec;
///
/// let spec = ScenarioSpec::preset_byzantine_routers();
/// let json = serde_json::to_string_pretty(&spec).unwrap();
/// let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
/// assert_eq!(back, spec);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (report key).
    pub name: String,
    /// Initial ring size before churn.
    pub n_initial: usize,
    /// Ring-placement model.
    pub placement: PlacementModel,
    /// Adversary model.
    pub adversary: AdversaryModel,
    /// Client-side defense arm.
    pub defense: DefenseModel,
    /// Churn schedule.
    pub churn: ChurnModel,
    /// Client workload.
    pub workload: WorkloadMix,
    /// Sampler tuning.
    pub sampler: SamplerTuning,
    /// Chord substrate tuning.
    pub chord: ChordTuning,
    /// Observability knobs.
    pub telemetry: TelemetrySpec,
    /// Correlated failure domains and the scripted outage window.
    /// `None` (the default, and what omitting the key in JSON reads as)
    /// means no domain structure.
    pub domains: Option<FailureDomainSpec>,
    /// Adaptive routing / retry resilience knobs (chord-only).
    pub adaptive: AdaptiveRoutingSpec,
    /// Async lookup-engine phase (chord-only). `None` (the default, and
    /// what omitting the key in JSON reads as) skips the engine phase.
    pub engine: Option<EngineSpec>,
    /// Backends to run the spec against.
    pub backends: Vec<Backend>,
}

impl ScenarioSpec {
    /// A baseline spec: uniform placement, honest, static, both backends.
    fn baseline(name: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            n_initial: 256,
            placement: PlacementModel::Uniform,
            adversary: AdversaryModel::Honest,
            defense: DefenseModel::None,
            churn: ChurnModel::Static,
            workload: WorkloadMix {
                draws: 2_000,
                estimate_n: false,
            },
            sampler: SamplerTuning::default(),
            chord: ChordTuning::default(),
            telemetry: TelemetrySpec::default(),
            domains: None,
            adaptive: AdaptiveRoutingSpec::default(),
            engine: None,
            backends: vec![Backend::Oracle, Backend::Chord],
        }
    }

    /// The paper's own setting: static honest uniform ring. Everything
    /// else is measured against this control.
    pub fn preset_honest_static() -> ScenarioSpec {
        ScenarioSpec::baseline("honest-static")
    }

    /// Crash-heavy Poisson churn: sessions are short and 90% of
    /// departures are silent crashes, so routing state decays as fast as
    /// stabilization can repair it. Runs a third, *stale-oracle* arm
    /// lagging 2 000 ticks behind the horizon, so the report separates
    /// staleness cost (oracle vs stale) from routing-repair cost (stale
    /// vs chord).
    pub fn preset_crash_churn() -> ScenarioSpec {
        ScenarioSpec {
            churn: ChurnModel::Poisson {
                arrivals_per_1000_ticks: 40.0,
                mean_lifetime_ticks: 8_000,
                crash_fraction: 0.9,
                horizon_ticks: 20_000,
            },
            backends: vec![
                Backend::Oracle,
                Backend::StaleOracle { lag_ticks: 2_000 },
                Backend::Chord,
            ],
            ..ScenarioSpec::baseline("crash-churn")
        }
    }

    /// 10% of peers are Byzantine routers: they capture lookups that
    /// route through them (forging their reported position) and eclipse
    /// their true successor.
    pub fn preset_byzantine_routers() -> ScenarioSpec {
        ScenarioSpec {
            adversary: AdversaryModel::ByzantineRouters {
                fraction: 0.10,
                claim_ownership: true,
                eclipse_next: true,
            },
            ..ScenarioSpec::baseline("byzantine-routers")
        }
    }

    /// Pathological geometry: peers huddle in 8 tight clusters, leaving
    /// huge empty arcs — the adversarial placement for supplementation
    /// scans and `n`-estimation.
    pub fn preset_clustered_ring() -> ScenarioSpec {
        ScenarioSpec {
            placement: PlacementModel::Clustered {
                clusters: 8,
                spread_fraction: 0.002,
            },
            ..ScenarioSpec::baseline("clustered-ring")
        }
    }

    /// A flash crowd: calm traffic, then an arrival burst at 20× the base
    /// rate (long-lived joiners, no crashes), then calm again.
    pub fn preset_flash_crowd() -> ScenarioSpec {
        ScenarioSpec {
            churn: ChurnModel::Phased {
                phases: vec![
                    ChurnPhaseSpec {
                        duration_ticks: 5_000,
                        arrivals_per_1000_ticks: 5.0,
                        mean_lifetime_ticks: 200_000,
                        crash_fraction: 0.1,
                    },
                    ChurnPhaseSpec {
                        duration_ticks: 5_000,
                        arrivals_per_1000_ticks: 100.0,
                        mean_lifetime_ticks: 200_000,
                        crash_fraction: 0.0,
                    },
                    ChurnPhaseSpec {
                        duration_ticks: 5_000,
                        arrivals_per_1000_ticks: 5.0,
                        mean_lifetime_ticks: 200_000,
                        crash_fraction: 0.1,
                    },
                ],
            },
            ..ScenarioSpec::baseline("flash-crowd")
        }
    }

    /// The scale workload: a 10,000-peer ring (10⁴–10⁵ with the sweep
    /// harness's scale knob) under light crash churn, exercising bulk
    /// construction and the incremental ground-truth index rather than the
    /// adversary models. Fewer draws than the small presets — at this size
    /// the cost of interest is building and churning the ring itself.
    pub fn preset_scale_stress() -> ScenarioSpec {
        ScenarioSpec {
            n_initial: 10_000,
            churn: ChurnModel::Poisson {
                arrivals_per_1000_ticks: 50.0,
                mean_lifetime_ticks: 100_000,
                crash_fraction: 0.5,
                horizon_ticks: 10_000,
            },
            workload: WorkloadMix {
                draws: 1_000,
                estimate_n: false,
            },
            ..ScenarioSpec::baseline("scale-stress")
        }
    }

    /// One coalition arm: `strategy` at coalition share `fraction`,
    /// undefended. Chord-only (coalitions subvert routing; the oracle has
    /// none) and static (placement is compiled against a known ring);
    /// more draws than the small presets because the chi-square verdicts
    /// need per-cell mass.
    pub fn preset_coalition(strategy: CoalitionStrategySpec, fraction: f64) -> ScenarioSpec {
        ScenarioSpec {
            adversary: AdversaryModel::Coalition { strategy, fraction },
            workload: WorkloadMix {
                draws: 4_000,
                estimate_n: false,
            },
            backends: vec![Backend::Chord],
            ..ScenarioSpec::baseline(&format!(
                "{}-b{:02}",
                strategy.name(),
                (fraction * 100.0).round() as u32
            ))
        }
    }

    /// Returns this spec with the verified redundant-sampling defense
    /// switched on (`entries` disjoint-entry views) and `-defended`
    /// appended to the name.
    pub fn with_defense(mut self, entries: usize) -> ScenarioSpec {
        self.defense = DefenseModel::Quorum { entries };
        self.name.push_str("-defended");
        self
    }

    /// The sybil-arc-capture coalition at 10% of the population.
    pub fn preset_sybil_arc_capture() -> ScenarioSpec {
        ScenarioSpec::preset_coalition(CoalitionStrategySpec::SybilArcCapture, 0.10)
    }

    /// The adaptive arc-liar coalition at 10% of the population.
    pub fn preset_adaptive_liars() -> ScenarioSpec {
        ScenarioSpec::preset_coalition(CoalitionStrategySpec::AdaptiveArcLiars, 0.10)
    }

    /// The coordinated-eclipse coalition at 10% of the population.
    pub fn preset_eclipse_run() -> ScenarioSpec {
        ScenarioSpec::preset_coalition(CoalitionStrategySpec::EclipseRun, 0.10)
    }

    /// The full coalition battery: every strategy × every budget in
    /// `fractions` × {undefended, defended with a 3-entry quorum} — the
    /// attack/defense grid e16 measures.
    pub fn coalition_battery(fractions: &[f64]) -> Vec<ScenarioSpec> {
        let mut specs =
            Vec::with_capacity(CoalitionStrategySpec::all().len() * fractions.len() * 2);
        for strategy in CoalitionStrategySpec::all() {
            for &fraction in fractions {
                let base = ScenarioSpec::preset_coalition(strategy, fraction);
                specs.push(base.clone());
                specs.push(base.with_defense(3));
            }
        }
        specs
    }

    /// A correlated rack outage with the full resilience arm on: the
    /// ring is cut into 8 sectors and 2 of them (25% of the ring, the
    /// top of the ISSUE's 10–25% band) crash as a unit a quarter of the
    /// way through the draws, healing at the three-quarter mark.
    /// Chord-only (the oracle has no routing state for a correlated
    /// crash to damage) and static-churn (the outage *is* the
    /// membership dynamics; layering Poisson churn on top would
    /// confound the attribution).
    pub fn preset_domain_outage() -> ScenarioSpec {
        ScenarioSpec {
            domains: Some(FailureDomainSpec {
                domains: 8,
                crash_domains: 2,
                outage_start: 0.25,
                outage_end: 0.75,
            }),
            adaptive: AdaptiveRoutingSpec::full(),
            backends: vec![Backend::Chord],
            ..ScenarioSpec::baseline("domain-outage")
        }
    }

    /// The domain-outage battery: the same correlated outage with the
    /// resilience knobs toggled — `baseline` (neither), `scored`
    /// (peer scoring only), `retry` (retry/fallback only) and
    /// `adaptive` (both) — so the report isolates what each knob buys
    /// *during* the outage.
    pub fn domain_battery() -> Vec<ScenarioSpec> {
        let arms = [
            ("domain-outage-baseline", false, false),
            ("domain-outage-scored", true, false),
            ("domain-outage-retry", false, true),
            ("domain-outage-adaptive", true, true),
        ];
        arms.into_iter()
            .map(|(name, peer_scoring, retry)| {
                let mut spec = ScenarioSpec::preset_domain_outage();
                spec.name = name.to_string();
                spec.adaptive = AdaptiveRoutingSpec {
                    peer_scoring,
                    retry,
                };
                spec
            })
            .collect()
    }

    /// The async-engine delay-fault scenario: a constant-4-tick wire, a
    /// concurrent in-flight lookup phase, and one of eight ring sectors
    /// turning 32× slow — *alive*, answering late — for the middle half
    /// of the phase. Chord-only and static-churn for the same
    /// attribution reasons as
    /// [`preset_domain_outage`](ScenarioSpec::preset_domain_outage):
    /// the slowdown is the only dynamics, so the age-tail verdicts are
    /// attributable to it.
    pub fn preset_engine_slowdomain() -> ScenarioSpec {
        ScenarioSpec {
            chord: ChordTuning {
                latency: Some(LatencySpec::Constant { ticks: 4 }),
                ..ChordTuning::default()
            },
            engine: Some(EngineSpec {
                timeout_ticks: 144,
                slow: Some(SlowDomainSpec {
                    domains: 8,
                    slow: 1,
                    factor: 32,
                    start_frac: 0.25,
                    end_frac: 0.75,
                }),
                ..EngineSpec::default()
            }),
            adaptive: AdaptiveRoutingSpec::full(),
            backends: vec![Backend::Chord],
            ..ScenarioSpec::baseline("engine-slowdomain")
        }
    }

    /// The engine battery: the same slow-sector delay fault with the
    /// resilience knobs off (`baseline`) and on (`adaptive`), so the
    /// report isolates what deadline-driven retries + peer scoring buy
    /// against a latency fault that kills no lookup.
    pub fn engine_battery() -> Vec<ScenarioSpec> {
        let arms = [
            ("engine-slowdomain-baseline", AdaptiveRoutingSpec::default()),
            ("engine-slowdomain-adaptive", AdaptiveRoutingSpec::full()),
        ];
        arms.into_iter()
            .map(|(name, adaptive)| {
                let mut spec = ScenarioSpec::preset_engine_slowdomain();
                spec.name = name.to_string();
                spec.adaptive = adaptive;
                spec
            })
            .collect()
    }

    /// The standard adversarial battery, one preset per model family.
    pub fn presets() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::preset_honest_static(),
            ScenarioSpec::preset_crash_churn(),
            ScenarioSpec::preset_byzantine_routers(),
            ScenarioSpec::preset_clustered_ring(),
            ScenarioSpec::preset_flash_crowd(),
            ScenarioSpec::preset_scale_stress(),
        ]
    }

    /// Validates internal consistency, returning every problem found.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.name.is_empty() {
            problems.push("name must be non-empty".to_string());
        }
        if self.n_initial < 2 {
            problems.push(format!("n_initial {} < 2", self.n_initial));
        }
        if self.backends.is_empty() {
            problems.push("backends must be non-empty".to_string());
        }
        if self.workload.draws == 0 {
            problems.push("workload.draws must be positive".to_string());
        }
        if self.sampler.max_trials == 0 {
            problems.push("sampler.max_trials must be positive".to_string());
        }
        if self.sampler.n_upper_inflation < 1.0 || !self.sampler.n_upper_inflation.is_finite() {
            problems.push(format!(
                "sampler.n_upper_inflation {} < 1",
                self.sampler.n_upper_inflation
            ));
        }
        if self.telemetry.trace_lookups && self.telemetry.flight_recorder_capacity == 0 {
            problems.push(
                "telemetry.flight_recorder_capacity must be positive when tracing".to_string(),
            );
        }
        match &self.placement {
            PlacementModel::Uniform => {}
            PlacementModel::Clustered {
                clusters,
                spread_fraction,
            } => {
                if *clusters == 0 {
                    problems.push("clustered placement needs >= 1 cluster".to_string());
                }
                if !(*spread_fraction > 0.0 && *spread_fraction <= 1.0) {
                    problems.push(format!("spread_fraction {spread_fraction} outside (0, 1]"));
                }
            }
            PlacementModel::Skewed { exponent } => {
                if !(*exponent > 0.0 && exponent.is_finite()) {
                    problems.push(format!("skew exponent {exponent} must be positive"));
                }
            }
        }
        match &self.adversary {
            AdversaryModel::Honest => {}
            AdversaryModel::ByzantineRouters { fraction, .. } => {
                if !(0.0..=1.0).contains(fraction) {
                    problems.push(format!("byzantine fraction {fraction} outside [0, 1]"));
                }
            }
            AdversaryModel::Coalition { fraction, .. } => {
                if !(*fraction > 0.0 && *fraction < 0.5) {
                    problems.push(format!("coalition fraction {fraction} outside (0, 0.5)"));
                }
                if self.backends.iter().any(|b| *b != Backend::Chord) {
                    problems.push(
                        "coalition adversaries are chord-only (no routing to subvert elsewhere)"
                            .to_string(),
                    );
                }
                if !self.churn.is_static() {
                    problems.push(
                        "coalition placement is compiled against a static ring; churn would \
                         silently invalidate it"
                            .to_string(),
                    );
                }
            }
        }
        if let DefenseModel::Quorum { entries } = &self.defense {
            if !(1..=15).contains(entries) {
                problems.push(format!("defense quorum entries {entries} outside 1..=15"));
            }
            // Oracle backends have no routing to defend and would silently
            // run undefended while the report advertises a defended arm.
            if self.backends.iter().any(|b| *b != Backend::Chord) {
                problems.push(
                    "quorum defense is chord-only (oracle backends would run undefended \
                     under a defended name)"
                        .to_string(),
                );
            }
        }
        if let Some(domains) = &self.domains {
            if domains.domains < 2 {
                problems.push(format!("failure domains {} < 2", domains.domains));
            }
            if domains.crash_domains == 0 {
                problems.push("crash_domains must be >= 1 (else there is no outage)".to_string());
            }
            if domains.crash_domains >= domains.domains {
                problems.push(format!(
                    "crash_domains {} must leave survivors (domains = {})",
                    domains.crash_domains, domains.domains
                ));
            }
            if !(domains.outage_start >= 0.0 && domains.outage_start < 1.0) {
                problems.push(format!(
                    "outage_start {} outside [0, 1)",
                    domains.outage_start
                ));
            }
            if !(domains.outage_end > domains.outage_start && domains.outage_end <= 1.0) {
                problems.push(format!(
                    "outage_end {} outside ({}, 1]",
                    domains.outage_end, domains.outage_start
                ));
            }
            // The outage crashes a correlated arc of *routing* state;
            // the oracle backends have none, and would report a
            // domain-outage arm that never experienced an outage.
            if self.backends.iter().any(|b| *b != Backend::Chord) {
                problems.push(
                    "failure domains are chord-only (the oracle has no routing state for a \
                     correlated crash to damage)"
                        .to_string(),
                );
            }
            if !self.churn.is_static() {
                problems.push(
                    "failure-domain outages require static churn (the outage is the membership \
                     dynamics; layered churn would confound attribution)"
                        .to_string(),
                );
            }
            if self.defense.is_active() {
                problems.push(
                    "failure-domain outages run undefended (one resilience mechanism per arm: \
                     quorum defense and retry/fallback would confound each other's attribution)"
                        .to_string(),
                );
            }
        }
        if self.adaptive.is_active() && self.backends.iter().any(|b| *b != Backend::Chord) {
            problems.push(
                "adaptive routing / retry is chord-only (oracle backends would silently run \
                 plain under an adaptive name)"
                    .to_string(),
            );
        }
        if let Some(LatencySpec::Uniform { lo, hi }) = &self.chord.latency {
            if lo > hi {
                problems.push(format!(
                    "chord.latency uniform bounds inverted: {lo} > {hi}"
                ));
            }
        }
        if let Some(LatencySpec::LogNormal { sigma, .. }) = &self.chord.latency {
            if !(*sigma >= 0.0 && sigma.is_finite()) {
                problems.push(format!("chord.latency log-normal sigma {sigma} invalid"));
            }
        }
        if let Some(engine) = &self.engine {
            if engine.inflight == 0 {
                problems.push("engine.inflight must be positive".to_string());
            }
            if engine.timeout_ticks == 0 {
                problems.push("engine.timeout_ticks must be positive".to_string());
            }
            if engine.lookups == 0 {
                problems.push("engine.lookups must be positive".to_string());
            }
            if engine.windows == 0 {
                problems.push("engine.windows must be positive".to_string());
            }
            if engine.window_ticks == 0 {
                problems.push("engine.window_ticks must be positive".to_string());
            }
            // The engine drives real find_successor walks; the oracle
            // backends have no messages to put in flight.
            if self.backends.iter().any(|b| *b != Backend::Chord) {
                problems.push(
                    "the engine phase is chord-only (the oracle has no messages to put in \
                     flight)"
                        .to_string(),
                );
            }
            if let Some(slow) = &engine.slow {
                if slow.domains < 2 {
                    problems.push(format!("engine slow domains {} < 2", slow.domains));
                }
                if slow.slow == 0 {
                    problems.push("engine slow sectors must be >= 1 (else no fault)".to_string());
                }
                if slow.slow >= slow.domains {
                    problems.push(format!(
                        "engine slow sectors {} must leave fast sectors (domains = {})",
                        slow.slow, slow.domains
                    ));
                }
                if slow.factor < 2 {
                    problems.push(format!("engine slow factor {} < 2 is a no-op", slow.factor));
                }
                if !(slow.start_frac >= 0.0 && slow.start_frac < 1.0) {
                    problems.push(format!(
                        "engine slow start_frac {} outside [0, 1)",
                        slow.start_frac
                    ));
                }
                if !(slow.end_frac > slow.start_frac && slow.end_frac <= 1.0) {
                    problems.push(format!(
                        "engine slow end_frac {} outside ({}, 1]",
                        slow.end_frac, slow.start_frac
                    ));
                }
            }
        }
        for backend in &self.backends {
            if matches!(backend, Backend::StaleOracle { lag_ticks: 0 }) {
                problems.push("stale-oracle lag must be positive (use Oracle for lag 0)".into());
            }
        }
        // Reports key arms by backend *name*, so two backends sharing a
        // name (e.g. two stale-oracle lags) would produce
        // indistinguishable aggregate rows; sweep lags across specs
        // instead.
        let mut names: Vec<&str> = self.backends.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            problems.push("backends must have distinct report names (one arm per name)".into());
        }
        match &self.churn {
            ChurnModel::Static => {}
            ChurnModel::Poisson {
                arrivals_per_1000_ticks,
                mean_lifetime_ticks,
                crash_fraction,
                horizon_ticks,
            } => {
                if *arrivals_per_1000_ticks <= 0.0 || arrivals_per_1000_ticks.is_nan() {
                    problems.push("poisson arrival rate must be positive".to_string());
                }
                if *mean_lifetime_ticks == 0 {
                    problems.push("poisson mean lifetime must be positive".to_string());
                }
                if !(0.0..=1.0).contains(crash_fraction) {
                    problems.push(format!("crash fraction {crash_fraction} outside [0, 1]"));
                }
                if *horizon_ticks == 0 {
                    problems.push("poisson horizon must be positive".to_string());
                }
            }
            ChurnModel::Phased { phases } => {
                if phases.is_empty() {
                    problems.push("phased churn needs >= 1 phase".to_string());
                }
                for (i, p) in phases.iter().enumerate() {
                    if p.duration_ticks == 0 {
                        problems.push(format!("phase {i} duration must be positive"));
                    }
                    if p.arrivals_per_1000_ticks <= 0.0 || p.arrivals_per_1000_ticks.is_nan() {
                        problems.push(format!("phase {i} arrival rate must be positive"));
                    }
                    if p.mean_lifetime_ticks == 0 {
                        problems.push(format!("phase {i} mean lifetime must be positive"));
                    }
                    if !(0.0..=1.0).contains(&p.crash_fraction) {
                        problems.push(format!("phase {i} crash fraction outside [0, 1]"));
                    }
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_distinct_and_cover_the_required_models() {
        let presets = ScenarioSpec::presets();
        assert!(presets.len() >= 4, "the battery must ship >= 4 models");
        let names: std::collections::HashSet<_> = presets.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), presets.len(), "preset names must be unique");
        for spec in &presets {
            spec.validate().unwrap_or_else(|problems| {
                panic!("{} invalid: {problems:?}", spec.name);
            });
            assert!(spec.backends.contains(&Backend::Oracle));
            assert!(spec.backends.contains(&Backend::Chord));
        }
        // The four required model families.
        assert!(presets.iter().any(|s| s.adversary == AdversaryModel::Honest
            && s.churn.is_static()
            && s.placement == PlacementModel::Uniform));
        assert!(presets.iter().any(
            |s| matches!(&s.churn, ChurnModel::Poisson { crash_fraction, .. }
                if *crash_fraction > 0.5)
        ));
        assert!(presets
            .iter()
            .any(|s| matches!(s.adversary, AdversaryModel::ByzantineRouters { .. })));
        assert!(presets
            .iter()
            .any(|s| matches!(s.placement, PlacementModel::Clustered { .. })));
    }

    #[test]
    fn every_preset_roundtrips_through_json() {
        for spec in ScenarioSpec::presets() {
            let compact = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&compact).unwrap();
            assert_eq!(back, spec, "compact roundtrip of {}", spec.name);
            let pretty = serde_json::to_string_pretty(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&pretty).unwrap();
            assert_eq!(back, spec, "pretty roundtrip of {}", spec.name);
        }
    }

    #[test]
    fn handwritten_json_parses() {
        let text = r#"{
            "name": "tiny",
            "n_initial": 32,
            "placement": {"Skewed": {"exponent": 3.0}},
            "adversary": "Honest",
            "defense": "None",
            "churn": "Static",
            "workload": {"draws": 100, "estimate_n": true},
            "sampler": {"n_upper_inflation": 2.0, "max_trials": 64},
            "chord": {"successor_list_len": 4, "stabilize_every_ticks": 100,
                      "maintenance": {"Batched": {"budget_per_round": 32}}},
            "telemetry": {"trace_lookups": true, "flight_recorder_capacity": 16},
            "adaptive": {"peer_scoring": false, "retry": false},
            "backends": ["Oracle", "Chord"]
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(text).unwrap();
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.placement, PlacementModel::Skewed { exponent: 3.0 });
        assert!(spec.workload.estimate_n);
        // `domains`, `engine` and `chord.latency` are omitted above:
        // pre-domain / pre-engine spec files must keep parsing, with the
        // missing keys reading as "feature off".
        assert_eq!(spec.domains, None);
        assert_eq!(spec.engine, None);
        assert_eq!(spec.chord.latency, None);
        assert!(!spec.adaptive.is_active());
        assert_eq!(
            spec.chord.maintenance,
            MaintenanceSpec::Batched {
                budget_per_round: 32
            }
        );
        assert!(spec.telemetry.trace_lookups);
        assert_eq!(spec.telemetry.flight_recorder_capacity, 16);
        spec.validate().unwrap();
    }

    #[test]
    fn telemetry_defaults_off_and_validates_capacity() {
        let spec = ScenarioSpec::preset_honest_static();
        assert!(!spec.telemetry.trace_lookups, "tracing is opt-in");
        assert_eq!(spec.telemetry.flight_recorder_capacity, 64);
        // Tracing into a zero-capacity flight recorder is a spec bug.
        let mut traced = ScenarioSpec::preset_honest_static();
        traced.telemetry = TelemetrySpec {
            trace_lookups: true,
            flight_recorder_capacity: 0,
        };
        assert!(traced.validate().is_err());
        traced.telemetry.flight_recorder_capacity = 8;
        traced.validate().unwrap();
        // An idle recorder may advertise any capacity.
        let mut idle = ScenarioSpec::preset_honest_static();
        idle.telemetry.flight_recorder_capacity = 0;
        idle.validate().unwrap();
    }

    #[test]
    fn maintenance_specs_roundtrip_and_compile_to_budgets() {
        let variants = [
            MaintenanceSpec::FullRefresh,
            MaintenanceSpec::BatchedDrain,
            MaintenanceSpec::Batched {
                budget_per_round: 0,
            },
            MaintenanceSpec::Batched {
                budget_per_round: 128,
            },
        ];
        for m in variants {
            let json = serde_json::to_string(&m).unwrap();
            let back: MaintenanceSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m, "{json}");
        }
        assert_eq!(MaintenanceSpec::FullRefresh.budget(), None);
        assert_eq!(
            MaintenanceSpec::BatchedDrain.budget(),
            Some(chord::MaintenanceBudget::unlimited())
        );
        assert_eq!(
            MaintenanceSpec::Batched {
                budget_per_round: 7
            }
            .budget(),
            Some(chord::MaintenanceBudget::per_round(7))
        );
        // The default tuning keeps the classic path: batching is opt-in.
        assert_eq!(
            ChordTuning::default().maintenance,
            MaintenanceSpec::FullRefresh
        );
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut spec = ScenarioSpec::preset_honest_static();
        spec.name.clear();
        spec.n_initial = 1;
        spec.backends.clear();
        spec.adversary = AdversaryModel::ByzantineRouters {
            fraction: 2.0,
            claim_ownership: true,
            eclipse_next: false,
        };
        let problems = spec.validate().unwrap_err();
        assert!(problems.len() >= 4, "{problems:?}");
        // Non-finite inflation must be rejected, not silently saturate.
        let mut inf = ScenarioSpec::preset_honest_static();
        inf.sampler.n_upper_inflation = f64::INFINITY;
        assert!(inf.validate().is_err());
        let mut nan = ScenarioSpec::preset_honest_static();
        nan.sampler.n_upper_inflation = f64::NAN;
        assert!(nan.validate().is_err());
    }

    #[test]
    fn coalition_battery_covers_the_attack_defense_grid() {
        let battery = ScenarioSpec::coalition_battery(&[0.05, 0.1]);
        assert_eq!(battery.len(), 12, "3 strategies x 2 budgets x ±defense");
        let names: std::collections::HashSet<_> = battery.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), battery.len(), "names must be unique");
        for spec in &battery {
            spec.validate().unwrap_or_else(|problems| {
                panic!("{} invalid: {problems:?}", spec.name);
            });
            assert_eq!(spec.backends, vec![Backend::Chord], "{}", spec.name);
            assert!(spec.churn.is_static(), "{}", spec.name);
            let defended = matches!(spec.defense, DefenseModel::Quorum { .. });
            assert_eq!(
                spec.name.ends_with("-defended"),
                defended,
                "{}: name must advertise the defense arm",
                spec.name
            );
        }
        for strategy in CoalitionStrategySpec::all() {
            assert_eq!(
                battery
                    .iter()
                    .filter(|s| s.name.starts_with(strategy.name()))
                    .count(),
                4,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn coalition_specs_roundtrip_and_reject_bad_shapes() {
        for spec in ScenarioSpec::coalition_battery(&[0.1]) {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
        // Coalition on a non-chord backend is rejected.
        let mut spec = ScenarioSpec::preset_sybil_arc_capture();
        spec.backends = vec![Backend::Oracle, Backend::Chord];
        assert!(spec.validate().is_err());
        // Coalition under churn is rejected.
        let mut spec = ScenarioSpec::preset_eclipse_run();
        spec.churn = ScenarioSpec::preset_crash_churn().churn;
        assert!(spec.validate().is_err());
        // Out-of-range budgets are rejected.
        for fraction in [0.0, 0.5, 0.9] {
            let mut spec = ScenarioSpec::preset_adaptive_liars();
            spec.adversary = AdversaryModel::Coalition {
                strategy: CoalitionStrategySpec::AdaptiveArcLiars,
                fraction,
            };
            assert!(spec.validate().is_err(), "fraction {fraction}");
        }
        // Degenerate quorums are rejected.
        let mut spec = ScenarioSpec::preset_sybil_arc_capture().with_defense(3);
        spec.defense = DefenseModel::Quorum { entries: 0 };
        assert!(spec.validate().is_err());
        assert!(DefenseModel::Quorum { entries: 3 }.is_active());
        assert!(!DefenseModel::None.is_active());
    }

    #[test]
    fn stale_oracle_backend_is_named_validated_and_rides_crash_churn() {
        let spec = ScenarioSpec::preset_crash_churn();
        spec.validate().unwrap();
        assert!(spec
            .backends
            .contains(&Backend::StaleOracle { lag_ticks: 2_000 }));
        assert_eq!(Backend::StaleOracle { lag_ticks: 7 }.name(), "stale-oracle");
        let mut bad = spec.clone();
        bad.backends = vec![Backend::StaleOracle { lag_ticks: 0 }];
        assert!(bad.validate().is_err(), "zero lag is the plain oracle");
        // Every entry is checked, not just the first stale one.
        let mut hidden = spec.clone();
        hidden.backends = vec![
            Backend::StaleOracle { lag_ticks: 2_000 },
            Backend::StaleOracle { lag_ticks: 0 },
        ];
        assert!(hidden.validate().is_err(), "zero lag hidden in second slot");
        // Two lags share the report name "stale-oracle": their aggregate
        // rows would be indistinguishable, so the spec is rejected.
        let mut twin = spec;
        twin.backends = vec![
            Backend::StaleOracle { lag_ticks: 1_000 },
            Backend::StaleOracle { lag_ticks: 5_000 },
        ];
        assert!(twin.validate().is_err(), "duplicate backend names");
    }

    #[test]
    fn quorum_defense_requires_chord_only_backends() {
        let mut spec = ScenarioSpec::preset_honest_static().with_defense(3);
        // The baseline runs both backends; a defended oracle arm would
        // silently run undefended under a defended name.
        assert!(spec.validate().is_err());
        spec.backends = vec![Backend::Chord];
        spec.validate().unwrap();
    }

    #[test]
    fn scale_stress_preset_is_large_churny_and_paired() {
        let spec = ScenarioSpec::preset_scale_stress();
        spec.validate().unwrap();
        assert!(spec.n_initial >= 10_000);
        assert!(!spec.churn.is_static(), "scale must exercise churn");
        assert_eq!(spec.backends, vec![Backend::Oracle, Backend::Chord]);
    }

    #[test]
    fn domain_outage_preset_is_valid_chord_only_and_roundtrips() {
        let spec = ScenarioSpec::preset_domain_outage();
        spec.validate().unwrap();
        assert_eq!(spec.backends, vec![Backend::Chord]);
        assert!(spec.churn.is_static());
        let domains = spec.domains.expect("preset must carry domain structure");
        // The ISSUE's outage band: 10–25% of the ring down at once.
        let frac = domains.crashed_fraction();
        assert!((0.10..=0.25).contains(&frac), "crashed fraction {frac}");
        assert!(domains.outage_start < domains.outage_end);
        assert!(spec.adaptive.peer_scoring && spec.adaptive.retry);
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn domain_battery_toggles_each_resilience_knob() {
        let battery = ScenarioSpec::domain_battery();
        assert_eq!(battery.len(), 4, "±scoring x ±retry");
        let names: std::collections::HashSet<_> = battery.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), battery.len(), "names must be unique");
        let mut knobs: Vec<(bool, bool)> = Vec::new();
        for spec in &battery {
            spec.validate().unwrap_or_else(|problems| {
                panic!("{} invalid: {problems:?}", spec.name);
            });
            // Every arm shares the same outage; only the knobs differ.
            assert_eq!(spec.domains, ScenarioSpec::preset_domain_outage().domains);
            assert_eq!(spec.backends, vec![Backend::Chord], "{}", spec.name);
            knobs.push((spec.adaptive.peer_scoring, spec.adaptive.retry));
        }
        knobs.sort_unstable();
        assert_eq!(
            knobs,
            vec![(false, false), (false, true), (true, false), (true, true)],
            "the battery must cover the full knob grid"
        );
    }

    #[test]
    fn domain_validation_rejects_bad_shapes() {
        // Degenerate sector counts and outage windows.
        let mut spec = ScenarioSpec::preset_domain_outage();
        spec.domains = Some(FailureDomainSpec {
            domains: 1,
            crash_domains: 1,
            outage_start: 0.9,
            outage_end: 0.1,
        });
        let problems = spec.validate().unwrap_err();
        assert!(problems.len() >= 3, "{problems:?}");
        // Crashing every domain leaves nobody to answer lookups.
        let mut all_down = ScenarioSpec::preset_domain_outage();
        all_down.domains.as_mut().unwrap().crash_domains = 8;
        assert!(all_down.validate().is_err());
        // Domain outages on an oracle backend never happen: rejected.
        let mut oracle = ScenarioSpec::preset_domain_outage();
        oracle.backends = vec![Backend::Oracle, Backend::Chord];
        assert!(oracle.validate().is_err());
        // Layering Poisson churn over the outage is rejected.
        let mut churny = ScenarioSpec::preset_domain_outage();
        churny.churn = ScenarioSpec::preset_crash_churn().churn;
        assert!(churny.validate().is_err());
        // One resilience mechanism per arm: quorum + domains is rejected.
        let mut defended = ScenarioSpec::preset_domain_outage();
        defended.defense = DefenseModel::Quorum { entries: 3 };
        assert!(defended.validate().is_err());
        // Adaptive routing on a mixed-backend spec is rejected even
        // without domain structure.
        let mut mixed = ScenarioSpec::preset_honest_static();
        mixed.adaptive = AdaptiveRoutingSpec::full();
        assert!(mixed.validate().is_err());
        mixed.backends = vec![Backend::Chord];
        mixed.validate().unwrap();
    }

    #[test]
    fn engine_preset_is_valid_chord_only_and_roundtrips() {
        let spec = ScenarioSpec::preset_engine_slowdomain();
        spec.validate().unwrap();
        assert_eq!(spec.backends, vec![Backend::Chord]);
        assert!(spec.churn.is_static());
        let engine = spec.engine.expect("preset must carry an engine phase");
        let slow = engine.slow.expect("preset must carry a slow sector");
        assert!(slow.factor >= 2 && slow.slow < slow.domains);
        // The deadline must be shorter than the slowed walk, else it
        // never fires: a walk through the slow sector pays
        // factor × wire ticks per hop.
        let wire = match spec.chord.latency.unwrap() {
            LatencySpec::Constant { ticks } => ticks,
            other => panic!("preset wire must be constant, got {other:?}"),
        };
        assert!(engine.timeout_ticks < slow.factor * wire * 8);
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn engine_battery_toggles_the_resilience_arm() {
        let battery = ScenarioSpec::engine_battery();
        assert_eq!(battery.len(), 2, "baseline vs adaptive");
        let names: std::collections::HashSet<_> = battery.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), battery.len(), "names must be unique");
        for spec in &battery {
            spec.validate().unwrap_or_else(|problems| {
                panic!("{} invalid: {problems:?}", spec.name);
            });
            // Every arm shares the same fault; only the knobs differ.
            assert_eq!(spec.engine, ScenarioSpec::preset_engine_slowdomain().engine);
            assert_eq!(
                spec.chord.latency,
                ScenarioSpec::preset_engine_slowdomain().chord.latency
            );
            assert_eq!(spec.backends, vec![Backend::Chord], "{}", spec.name);
        }
        assert!(!battery[0].adaptive.is_active(), "{}", battery[0].name);
        assert!(
            battery[1].adaptive.peer_scoring && battery[1].adaptive.retry,
            "{}",
            battery[1].name
        );
    }

    #[test]
    fn engine_validation_rejects_bad_shapes() {
        // Degenerate knobs, all reported at once.
        let mut spec = ScenarioSpec::preset_engine_slowdomain();
        spec.engine = Some(EngineSpec {
            inflight: 0,
            timeout_ticks: 0,
            lookups: 0,
            windows: 0,
            window_ticks: 0,
            slow: Some(SlowDomainSpec {
                domains: 1,
                slow: 1,
                factor: 1,
                start_frac: 0.9,
                end_frac: 0.1,
            }),
        });
        let problems = spec.validate().unwrap_err();
        assert!(problems.len() >= 8, "{problems:?}");
        // An engine phase on an oracle backend never runs: rejected.
        let mut oracle = ScenarioSpec::preset_engine_slowdomain();
        oracle.adaptive = AdaptiveRoutingSpec::default();
        oracle.backends = vec![Backend::Oracle, Backend::Chord];
        assert!(oracle.validate().is_err());
        // Slowing every sector leaves nothing fast to route through.
        let mut all_slow = ScenarioSpec::preset_engine_slowdomain();
        all_slow
            .engine
            .as_mut()
            .unwrap()
            .slow
            .as_mut()
            .unwrap()
            .slow = 8;
        assert!(all_slow.validate().is_err());
        // Inverted / non-finite latency models are rejected.
        let mut inverted = ScenarioSpec::preset_honest_static();
        inverted.chord.latency = Some(LatencySpec::Uniform { lo: 9, hi: 2 });
        assert!(inverted.validate().is_err());
        let mut nan = ScenarioSpec::preset_honest_static();
        nan.chord.latency = Some(LatencySpec::LogNormal {
            median: 8,
            sigma: f64::NAN,
        });
        assert!(nan.validate().is_err());
        // A well-formed latency model on a mixed-backend spec is fine —
        // the oracle ignores it; only the engine phase is chord-only.
        let mut latency_only = ScenarioSpec::preset_honest_static();
        latency_only.chord.latency = Some(LatencySpec::Constant { ticks: 7 });
        latency_only.validate().unwrap();
    }

    #[test]
    fn latency_specs_compile_to_the_simnet_models() {
        use simnet::LatencyModel;
        assert_eq!(
            LatencySpec::Constant { ticks: 4 }.to_model(),
            LatencyModel::Constant(4)
        );
        assert_eq!(
            LatencySpec::Uniform { lo: 1, hi: 9 }.to_model(),
            LatencyModel::Uniform { lo: 1, hi: 9 }
        );
        assert_eq!(
            LatencySpec::LogNormal {
                median: 10,
                sigma: 0.5
            }
            .to_model(),
            LatencyModel::LogNormal {
                median: 10,
                sigma: 0.5
            }
        );
    }

    #[test]
    fn points_serialize_as_plain_numbers_in_reports() {
        // keyspace's serde feature (tuple-struct derive): a Point is a
        // bare coordinate in JSON, not a wrapper object.
        let p = keyspace::Point::new(1234);
        assert_eq!(serde_json::to_string(&p).unwrap(), "1234");
        let back: keyspace::Point = serde_json::from_str("1234").unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Oracle.name(), "oracle");
        assert_eq!(Backend::Chord.name(), "chord");
    }
}
