//! The parallel multi-seed sweep harness.
//!
//! A [`Sweep`] fans a list of [`ScenarioSpec`]s out over seeds and
//! backends, runs every `(scenario, backend, seed)` task on a rayon
//! parallel iterator, and folds the records into a structured, JSON-ready
//! [`SweepReport`]. Each task derives all of its randomness from
//! `derive_seed(master, task_stream)`, and the parallel map preserves task
//! order, so reports are byte-identical across runs and thread counts.

use rayon::prelude::*;
use serde::Serialize;
use simnet::rng::derive_seed;
use stats::Welford;

use crate::run::{run_scenario_seed, SeedRunRecord};
use crate::{Backend, ScenarioSpec};

/// Aggregate statistics for one backend of one scenario across seeds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BackendAggregate {
    /// Backend name.
    pub backend: String,
    /// Seeds aggregated.
    pub seeds: u64,
    /// Mean live population at sampling time.
    pub live_peers_mean: f64,
    /// Mean draw-failure rate.
    pub fail_rate_mean: f64,
    /// Mean of per-seed mean messages per draw.
    pub messages_mean: f64,
    /// Std-dev across seeds of mean messages per draw.
    pub messages_std: f64,
    /// Mean of per-seed mean latency per draw.
    pub latency_mean: f64,
    /// Mean of per-seed mean trials per draw.
    pub trials_mean: f64,
    /// Mean total-variation distance from uniform.
    pub tv_mean: f64,
    /// Worst (largest) total-variation distance across seeds.
    pub tv_worst: f64,
    /// Smallest chi-square p-value across seeds (NaNs skipped).
    pub chi_square_p_min: f64,
    /// Largest chi-square p-value across seeds (NaNs skipped) — a biased
    /// arm must fail uniformity on *every* seed, which this bounds.
    pub chi_square_p_max: f64,
    /// Mean Byzantine population share.
    pub byzantine_population_share_mean: f64,
    /// Mean Byzantine sample share (the capture rate).
    pub byzantine_sample_share_mean: f64,
    /// Mean committee-capture probability at the measured sample share.
    pub committee_capture_p_mean: f64,
    /// Mean committee-capture probability a perfectly uniform sampler
    /// would risk at the same population share (the honest baseline).
    pub committee_capture_p_uniform_mean: f64,
    /// Mean defended-draw quorum failures per seed (0 without a defense
    /// arm).
    pub quorum_failures_mean: f64,
    /// Mean fraction of finger entries stale at sampling time (0 on
    /// oracle backends).
    pub finger_staleness_mean: f64,
    /// Mean dirty maintenance entries outstanding at sampling time (0
    /// outside batched-maintenance chord arms).
    pub maintenance_backlog_mean: f64,
    /// Mean 99th-percentile per-lookup hop count across seeds (0 on
    /// oracle backends).
    pub hop_p99_mean: f64,
    /// Worst 99th-percentile hop count across seeds — the figure the
    /// O(log n) verdict gates bound.
    pub hop_p99_max: u64,
    /// Mean 99th-percentile messages per draw across seeds.
    pub draw_msgs_p99_mean: f64,
    /// Worst 99th-percentile messages per draw across seeds.
    pub draw_msgs_p99_max: u64,
    /// Mean watchdog observation windows per seed (0 on oracle arms).
    pub watchdog_windows_mean: f64,
    /// Mean SLO breach edges per seed.
    pub health_breaches_mean: f64,
    /// Worst time-to-detect across seeds, in watchdog windows. −1 when
    /// any seed never detected a breach (including the no-fault case),
    /// so a detection gate of the form `0 ≤ ttd ≤ k` demands detection
    /// on *every* seed.
    pub time_to_detect_max: i64,
    /// Smallest time-to-recover across seeds. −1 (any seed still
    /// breached at run end) dominates the minimum, so a recovery gate of
    /// `ttr ≥ 0` demands confirmed recovery on every seed.
    pub time_to_recover_min: i64,
    /// Total draws issued while a correlated domain outage was active,
    /// summed across seeds (0 outside failure-domain scenarios).
    pub outage_draws_sum: u64,
    /// Mean during-outage lookup success ratio across seeds (1.0 when no
    /// outage ran — the vacuous case).
    pub outage_success_ratio_mean: f64,
    /// Worst during-outage success ratio across seeds — the figure the
    /// domain-outage verdicts gate (≥ 0.99 with the adaptive arm on).
    pub outage_success_ratio_min: f64,
    /// Async-engine lookups submitted, summed across seeds (0 outside
    /// engine-phase scenarios).
    pub engine_lookups_sum: u64,
    /// Async-engine lookups completed, summed across seeds — the
    /// exactly-once gate compares this against `engine_lookups_sum`.
    pub engine_completed_sum: u64,
    /// Engine deadlines fired, summed across seeds.
    pub engine_timeouts_sum: u64,
    /// Mean 99.9th-percentile engine completion age across seeds.
    pub engine_age_p999_mean: f64,
    /// Worst 99.9th-percentile engine completion age across seeds — the
    /// figure the slow-domain verdicts compare between arms.
    pub engine_age_p999_max: u64,
    /// Worst engine-phase time-to-detect for the in-flight-age rule
    /// across seeds; −1 when any seed never detected (so a gate of
    /// `0 ≤ ttd ≤ k` demands detection on every seed).
    pub engine_ttd_max: i64,
    /// Smallest engine-phase time-to-recover across seeds (−1, any seed
    /// still breached at phase end, dominates the minimum).
    pub engine_ttr_min: i64,
    /// Hop-histogram tail-exemplar slots claimed, summed across seeds (0
    /// on oracle arms) — every tail bucket that can be replayed by
    /// ordinal.
    pub exemplar_count_sum: u64,
    /// Name of the costliest profiler span summed across seeds (empty on
    /// oracle arms; ties break name-ascending, so the pick is
    /// deterministic).
    pub top_span: String,
    /// That span's summed cost — the numeric column diffs gate on.
    pub top_span_cost: u64,
    /// Span-profiler costs summed across seeds, name-sorted (empty on
    /// oracle arms).
    pub span_costs: std::collections::BTreeMap<String, u64>,
    /// Element-wise mean across seeds of each per-seed windowed gauge
    /// column — the longitudinal profile of the arm. Ragged seeds (ring
    /// eviction) average the windows present. Order-independent: means
    /// commute, so the aggregate is identical however rayon interleaved
    /// the tasks.
    pub series_mean: std::collections::BTreeMap<String, Vec<f64>>,
    /// Telemetry counters summed across seeds (BTreeMap, so report JSON
    /// lists them in sorted order regardless of how the rayon sweep
    /// interleaved the per-seed tasks). Empty for oracle backends.
    pub counters: std::collections::BTreeMap<String, u64>,
}

impl BackendAggregate {
    fn from_records(backend: Backend, records: &[&SeedRunRecord]) -> BackendAggregate {
        let mut live = Welford::new();
        let mut fail = Welford::new();
        let mut messages = Welford::new();
        let mut latency = Welford::new();
        let mut trials = Welford::new();
        let mut tv = Welford::new();
        let mut byz_pop = Welford::new();
        let mut byz_sample = Welford::new();
        let mut tv_worst = 0.0f64;
        let mut chi_min = f64::INFINITY;
        let mut chi_max = f64::NEG_INFINITY;
        let mut capture = Welford::new();
        let mut capture_uniform = Welford::new();
        let mut quorum_failures = Welford::new();
        let mut staleness = Welford::new();
        let mut backlog = Welford::new();
        let mut hop_p99 = Welford::new();
        let mut hop_p99_max = 0u64;
        let mut draw_p99 = Welford::new();
        let mut draw_p99_max = 0u64;
        let mut watchdog_windows = Welford::new();
        let mut health_breaches = Welford::new();
        let mut ttd_max = i64::MIN;
        let mut any_undetected = false;
        let mut ttr_min = i64::MAX;
        let mut outage_draws_sum = 0u64;
        let mut outage_ratio = Welford::new();
        let mut outage_ratio_min = 1.0f64;
        let mut engine_lookups_sum = 0u64;
        let mut engine_completed_sum = 0u64;
        let mut engine_timeouts_sum = 0u64;
        let mut engine_age_p999 = Welford::new();
        let mut engine_age_p999_max = 0u64;
        let mut engine_ttd_max = i64::MIN;
        let mut engine_any_undetected = false;
        let mut engine_ttr_min = i64::MAX;
        let mut exemplar_count_sum = 0u64;
        let mut span_costs: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        let mut series_sum: std::collections::BTreeMap<String, (Vec<f64>, Vec<u64>)> =
            std::collections::BTreeMap::new();
        // Per-worker recorders are merged here by summation into one
        // sorted map, so the aggregate is independent of rayon's task
        // interleaving (each record is already a pure function of its
        // seed; the fold order over a BTreeMap is canonical).
        let mut counters = std::collections::BTreeMap::new();
        for r in records {
            live.push(r.live_peers as f64);
            let total = r.samples_ok + r.samples_failed;
            fail.push(if total == 0 {
                0.0
            } else {
                r.samples_failed as f64 / total as f64
            });
            messages.push(r.mean_messages);
            latency.push(r.mean_latency);
            trials.push(r.mean_trials);
            tv.push(r.tv_from_uniform);
            tv_worst = tv_worst.max(r.tv_from_uniform);
            if r.chi_square_p.is_finite() {
                chi_min = chi_min.min(r.chi_square_p);
                chi_max = chi_max.max(r.chi_square_p);
            }
            byz_pop.push(r.byzantine_population_share);
            byz_sample.push(r.byzantine_sample_share);
            capture.push(r.committee_capture_p);
            capture_uniform.push(r.committee_capture_p_uniform);
            quorum_failures.push(r.quorum_failures as f64);
            staleness.push(r.finger_staleness);
            backlog.push(r.maintenance_backlog as f64);
            hop_p99.push(r.hop_p99 as f64);
            hop_p99_max = hop_p99_max.max(r.hop_p99);
            draw_p99.push(r.draw_msgs_p99 as f64);
            draw_p99_max = draw_p99_max.max(r.draw_msgs_p99);
            watchdog_windows.push(r.watchdog_windows as f64);
            health_breaches.push(r.health_breaches as f64);
            if r.time_to_detect < 0 {
                any_undetected = true;
            } else {
                ttd_max = ttd_max.max(r.time_to_detect);
            }
            ttr_min = ttr_min.min(r.time_to_recover);
            outage_draws_sum += r.outage_draws;
            outage_ratio.push(r.outage_success_ratio);
            outage_ratio_min = outage_ratio_min.min(r.outage_success_ratio);
            engine_lookups_sum += r.engine_lookups;
            engine_completed_sum += r.engine_completed;
            engine_timeouts_sum += r.engine_timeouts;
            engine_age_p999.push(r.engine_age_p999 as f64);
            engine_age_p999_max = engine_age_p999_max.max(r.engine_age_p999);
            if r.engine_ttd < 0 {
                engine_any_undetected = true;
            } else {
                engine_ttd_max = engine_ttd_max.max(r.engine_ttd);
            }
            engine_ttr_min = engine_ttr_min.min(r.engine_ttr);
            for (name, column) in &r.series {
                let (sums, counts) = series_sum.entry(name.clone()).or_default();
                if sums.len() < column.len() {
                    sums.resize(column.len(), 0.0);
                    counts.resize(column.len(), 0);
                }
                for (i, v) in column.iter().enumerate() {
                    sums[i] += v;
                    counts[i] += 1;
                }
            }
            for (name, value) in &r.counters {
                *counters.entry(name.clone()).or_insert(0u64) += value;
            }
            exemplar_count_sum += r.exemplar_count;
            for (name, cost) in &r.span_costs {
                *span_costs.entry(name.clone()).or_insert(0u64) += cost;
            }
        }
        // Costliest span, cost-descending with name-ascending ties — the
        // BTreeMap iteration order plus strict `>` makes the pick
        // deterministic.
        let (top_span, top_span_cost) =
            span_costs
                .iter()
                .fold((String::new(), 0u64), |best, (name, &cost)| {
                    if cost > best.1 && cost > 0 {
                        (name.clone(), cost)
                    } else {
                        best
                    }
                });
        let series_mean = series_sum
            .into_iter()
            .map(|(name, (sums, counts))| {
                let means = sums
                    .into_iter()
                    .zip(counts)
                    .map(|(s, c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect();
                (name, means)
            })
            .collect();
        BackendAggregate {
            backend: backend.name().to_string(),
            seeds: records.len() as u64,
            live_peers_mean: live.mean(),
            fail_rate_mean: fail.mean(),
            messages_mean: messages.mean(),
            messages_std: messages.std_dev(),
            latency_mean: latency.mean(),
            trials_mean: trials.mean(),
            tv_mean: tv.mean(),
            tv_worst,
            chi_square_p_min: if chi_min.is_finite() { chi_min } else { -1.0 },
            chi_square_p_max: if chi_max.is_finite() { chi_max } else { -1.0 },
            byzantine_population_share_mean: byz_pop.mean(),
            byzantine_sample_share_mean: byz_sample.mean(),
            committee_capture_p_mean: capture.mean(),
            committee_capture_p_uniform_mean: capture_uniform.mean(),
            quorum_failures_mean: quorum_failures.mean(),
            finger_staleness_mean: staleness.mean(),
            maintenance_backlog_mean: backlog.mean(),
            hop_p99_mean: hop_p99.mean(),
            hop_p99_max,
            draw_msgs_p99_mean: draw_p99.mean(),
            draw_msgs_p99_max: draw_p99_max,
            watchdog_windows_mean: watchdog_windows.mean(),
            health_breaches_mean: health_breaches.mean(),
            time_to_detect_max: if any_undetected || ttd_max == i64::MIN {
                -1
            } else {
                ttd_max
            },
            time_to_recover_min: if ttr_min == i64::MAX { 0 } else { ttr_min },
            outage_draws_sum,
            outage_success_ratio_mean: if records.is_empty() {
                1.0
            } else {
                outage_ratio.mean()
            },
            outage_success_ratio_min: outage_ratio_min,
            engine_lookups_sum,
            engine_completed_sum,
            engine_timeouts_sum,
            engine_age_p999_mean: engine_age_p999.mean(),
            engine_age_p999_max,
            engine_ttd_max: if engine_any_undetected || engine_ttd_max == i64::MIN {
                -1
            } else {
                engine_ttd_max
            },
            engine_ttr_min: if engine_ttr_min == i64::MAX {
                0
            } else {
                engine_ttr_min
            },
            exemplar_count_sum,
            top_span,
            top_span_cost,
            span_costs,
            series_mean,
            counters,
        }
    }
}

/// All results for one scenario: the spec itself (reports are
/// self-describing), every per-seed record, and per-backend aggregates.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioReport {
    /// The scenario that produced these results.
    pub spec: ScenarioSpec,
    /// One record per `(backend, seed)`.
    pub runs: Vec<SeedRunRecord>,
    /// Per-backend aggregates over seeds.
    pub aggregates: Vec<BackendAggregate>,
}

/// The full sweep output.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepReport {
    /// Master seed every task seed derives from.
    pub master_seed: u64,
    /// Seeds run per scenario-backend pair.
    pub seeds_per_scenario: u32,
    /// One report per scenario, in input order.
    pub scenarios: Vec<ScenarioReport>,
}

impl SweepReport {
    /// Compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("sweep reports always serialize")
    }

    /// Two-space-indented JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep reports always serialize")
    }
}

/// A configured multi-seed sweep over a scenario battery.
///
/// # Example
///
/// ```
/// use scenarios::{ScenarioSpec, Sweep};
///
/// let mut spec = ScenarioSpec::preset_honest_static();
/// spec.n_initial = 48;
/// spec.workload.draws = 100;
/// let report = Sweep::new(vec![spec]).with_seeds(2).run();
/// assert_eq!(report.scenarios.len(), 1);
/// assert_eq!(report.scenarios[0].runs.len(), 4); // 2 backends x 2 seeds
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    specs: Vec<ScenarioSpec>,
    master_seed: u64,
    seeds_per_scenario: u32,
}

impl Sweep {
    /// A sweep over `specs` with the default master seed and 8 seeds per
    /// scenario.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: Vec<ScenarioSpec>) -> Sweep {
        assert!(!specs.is_empty(), "a sweep needs at least one scenario");
        Sweep {
            specs,
            master_seed: 0x5EED_5CEA_A210_2004,
            seeds_per_scenario: 8,
        }
    }

    /// Overrides the master seed.
    pub fn with_master_seed(mut self, master_seed: u64) -> Sweep {
        self.master_seed = master_seed;
        self
    }

    /// Sets how many seeds each scenario-backend pair runs.
    ///
    /// # Panics
    ///
    /// Panics if `seeds == 0`.
    pub fn with_seeds(mut self, seeds: u32) -> Sweep {
        assert!(seeds > 0, "need at least one seed");
        self.seeds_per_scenario = seeds;
        self
    }

    /// Scales every scenario's initial ring size by `scale` (floor 2) —
    /// the knob that turns a preset battery into a 10⁴–10⁵-node run
    /// without forking the specs. Draw counts and churn rates are left
    /// alone: population is the axis being swept.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn with_scale(mut self, scale: f64) -> Sweep {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale {scale} must be positive and finite"
        );
        for spec in &mut self.specs {
            spec.n_initial = ((spec.n_initial as f64 * scale).round() as usize).max(2);
        }
        self
    }

    /// The task seed for `(scenario_index, seed_index)`.
    ///
    /// Both backends of a pair share it, so they see the same placement
    /// and churn streams — the paired design that makes Oracle-vs-Chord
    /// deltas per-seed meaningful.
    fn task_seed(&self, scenario_index: usize, seed_index: u32) -> u64 {
        derive_seed(
            self.master_seed,
            ((scenario_index as u64) << 32) | seed_index as u64,
        )
    }

    /// Runs every `(scenario, backend, seed)` task in parallel and folds
    /// the records into a report.
    ///
    /// # Panics
    ///
    /// Panics if any spec fails validation (before spawning any work).
    pub fn run(&self) -> SweepReport {
        for spec in &self.specs {
            if let Err(problems) = spec.validate() {
                panic!("invalid scenario {:?}: {problems:?}", spec.name);
            }
        }
        // Flatten to (scenario, backend, seed) tasks; record order is
        // fixed by this list, independent of scheduling.
        let tasks: Vec<(usize, Backend, u64)> = self
            .specs
            .iter()
            .enumerate()
            .flat_map(|(si, spec)| {
                spec.backends.iter().flat_map(move |&backend| {
                    (0..self.seeds_per_scenario).map(move |k| (si, backend, self.task_seed(si, k)))
                })
            })
            .collect();

        let records: Vec<SeedRunRecord> = tasks
            .par_iter()
            .map(|&(si, backend, seed)| run_scenario_seed(&self.specs[si], backend, seed))
            .collect();

        let mut scenarios = Vec::with_capacity(self.specs.len());
        for (si, spec) in self.specs.iter().enumerate() {
            let runs: Vec<SeedRunRecord> = tasks
                .iter()
                .zip(&records)
                .filter(|((ti, _, _), _)| *ti == si)
                .map(|(_, r)| r.clone())
                .collect();
            let aggregates = spec
                .backends
                .iter()
                .map(|&backend| {
                    let of_backend: Vec<&SeedRunRecord> = runs
                        .iter()
                        .filter(|r| r.backend == backend.name())
                        .collect();
                    BackendAggregate::from_records(backend, &of_backend)
                })
                .collect();
            scenarios.push(ScenarioReport {
                spec: spec.clone(),
                runs,
                aggregates,
            });
        }
        SweepReport {
            master_seed: self.master_seed,
            seeds_per_scenario: self.seeds_per_scenario,
            scenarios,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_specs() -> Vec<ScenarioSpec> {
        let mut honest = ScenarioSpec::preset_honest_static();
        let mut byz = ScenarioSpec::preset_byzantine_routers();
        for spec in [&mut honest, &mut byz] {
            spec.n_initial = 64;
            spec.workload.draws = 200;
        }
        vec![honest, byz]
    }

    #[test]
    fn sweep_covers_every_scenario_backend_seed_cell() {
        let report = Sweep::new(tiny_specs()).with_seeds(3).run();
        assert_eq!(report.scenarios.len(), 2);
        for scenario in &report.scenarios {
            assert_eq!(scenario.runs.len(), 6, "2 backends x 3 seeds");
            assert_eq!(scenario.aggregates.len(), 2);
            for agg in &scenario.aggregates {
                assert_eq!(agg.seeds, 3);
            }
            // Distinct seeds per scenario.
            let mut seeds: Vec<u64> = scenario.runs.iter().map(|r| r.seed).collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), 3);
        }
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        let sweep = Sweep::new(tiny_specs()).with_seeds(2).with_master_seed(99);
        let a = sweep.run();
        let b = sweep.run();
        assert_eq!(a, b, "records must not depend on scheduling");
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
    }

    #[test]
    fn counter_snapshots_are_byte_identical_across_repeated_runs() {
        // The telemetry counter maps, watchdog health-event streams and
        // windowed series ride in every chord record and in the
        // per-backend aggregates; none may depend on how rayon striped
        // the tasks. Three runs, byte-for-byte identical JSON. The
        // crash-churn spec is included so at least one arm emits a
        // non-empty health stream with a real time-to-detect.
        let mut specs = tiny_specs();
        let mut churn = ScenarioSpec::preset_crash_churn();
        churn.n_initial = 96;
        churn.workload.draws = 400;
        specs.push(churn);
        let sweep = Sweep::new(specs).with_seeds(3).with_master_seed(7);
        let baseline = sweep.run().to_json();
        for _ in 0..2 {
            assert_eq!(sweep.run().to_json(), baseline);
        }
        let report = sweep.run();
        // The crash burst is detected on every seed, immediately, and the
        // identical JSON above pins the event stream byte-for-byte.
        let churn_chord = report.scenarios[2]
            .aggregates
            .iter()
            .find(|a| a.backend == Backend::Chord.name())
            .unwrap();
        assert!((0..=2).contains(&churn_chord.time_to_detect_max));
        assert!(churn_chord.health_breaches_mean >= 1.0);
        assert!(churn_chord.watchdog_windows_mean > 1.0);
        assert!(!churn_chord.series_mean.is_empty());
        for r in report.scenarios[2]
            .runs
            .iter()
            .filter(|r| r.backend == "chord")
        {
            assert!(!r.health_events.is_empty(), "churn must breach some rule");
            assert!(r.health_events[0].contains("breach"));
        }
        for scenario in &report.scenarios {
            let chord = scenario
                .aggregates
                .iter()
                .find(|a| a.backend == Backend::Chord.name())
                .unwrap();
            assert!(!chord.counters.is_empty());
            // Aggregate counters are the exact sum of the per-seed maps.
            let mut summed = std::collections::BTreeMap::new();
            for r in scenario.runs.iter().filter(|r| r.backend == "chord") {
                for (name, value) in &r.counters {
                    *summed.entry(name.clone()).or_insert(0u64) += value;
                }
            }
            assert_eq!(chord.counters, summed);
            let oracle = scenario
                .aggregates
                .iter()
                .find(|a| a.backend == Backend::Oracle.name())
                .unwrap();
            assert!(oracle.counters.is_empty());
        }
    }

    #[test]
    fn domain_outage_sweep_reports_are_byte_identical_across_runs() {
        // Satellite determinism gate: the full adaptive arm (scoring +
        // retry + correlated outage) keeps reports a pure function of
        // (spec, master seed) — three runs, byte-for-byte identical —
        // and the outage columns surface in the aggregates.
        let mut spec = ScenarioSpec::preset_domain_outage();
        spec.n_initial = 96;
        spec.workload.draws = 600;
        let sweep = Sweep::new(vec![spec]).with_seeds(2).with_master_seed(23);
        let baseline = sweep.run().to_json();
        for _ in 0..2 {
            assert_eq!(sweep.run().to_json(), baseline);
        }
        let report = sweep.run();
        let chord = report.scenarios[0]
            .aggregates
            .iter()
            .find(|a| a.backend == Backend::Chord.name())
            .unwrap();
        assert!(chord.outage_draws_sum > 0, "the outage must cover draws");
        assert!(chord.outage_success_ratio_min <= chord.outage_success_ratio_mean);
        assert!(
            chord.outage_success_ratio_min >= 0.99,
            "adaptive routing must hold the SLO: {}",
            chord.outage_success_ratio_min
        );
        assert!(chord.counters.contains_key("domain.events"));
    }

    #[test]
    fn aggregates_carry_tail_columns() {
        let report = Sweep::new(tiny_specs()).with_seeds(2).run();
        for scenario in &report.scenarios {
            let chord = scenario
                .aggregates
                .iter()
                .find(|a| a.backend == Backend::Chord.name())
                .unwrap();
            assert!(chord.hop_p99_max > 0);
            assert!(chord.hop_p99_mean <= chord.hop_p99_max as f64);
            assert!(chord.draw_msgs_p99_max > 0);
            let oracle = scenario
                .aggregates
                .iter()
                .find(|a| a.backend == Backend::Oracle.name())
                .unwrap();
            assert_eq!(oracle.hop_p99_max, 0, "the oracle does not route");
            assert!(oracle.draw_msgs_p99_max > 0, "synthetic cost still tails");
        }
    }

    #[test]
    fn report_json_is_machine_readable_and_self_describing() {
        let report = Sweep::new(tiny_specs()).with_seeds(1).run();
        let json = report.to_json_pretty();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let scenarios = value.get("scenarios").and_then(|v| v.as_seq()).unwrap();
        assert_eq!(scenarios.len(), 2);
        // The spec rides inside the report.
        let first = scenarios[0].get("spec").unwrap();
        assert_eq!(
            first.get("name").and_then(|v| v.as_str()),
            Some("honest-static")
        );
        // Both backends appear in the aggregates.
        let aggs = scenarios[0]
            .get("aggregates")
            .and_then(|v| v.as_seq())
            .unwrap();
        let backends: Vec<&str> = aggs
            .iter()
            .map(|a| a.get("backend").and_then(|v| v.as_str()).unwrap())
            .collect();
        assert_eq!(backends, ["oracle", "chord"]);
    }

    #[test]
    fn with_scale_resizes_every_spec() {
        let mut specs = tiny_specs();
        specs[0].n_initial = 100;
        specs[1].n_initial = 30;
        let sweep = Sweep::new(specs).with_scale(2.5);
        assert_eq!(sweep.specs[0].n_initial, 250);
        assert_eq!(sweep.specs[1].n_initial, 75);
        let shrunk = Sweep::new(tiny_specs()).with_scale(1e-9);
        assert!(shrunk.specs.iter().all(|s| s.n_initial == 2), "floor at 2");
    }

    #[test]
    fn different_master_seeds_differ() {
        let specs = vec![tiny_specs().remove(0)];
        let a = Sweep::new(specs.clone())
            .with_seeds(1)
            .with_master_seed(1)
            .run();
        let b = Sweep::new(specs).with_seeds(1).with_master_seed(2).run();
        assert_ne!(a.scenarios[0].runs, b.scenarios[0].runs);
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn empty_sweep_panics() {
        let _ = Sweep::new(vec![]);
    }
}
