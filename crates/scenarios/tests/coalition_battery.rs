//! Attack → measured bias → defense → restored safety, end to end on
//! small rings (the full-size grid is e16's coalition battery; these are
//! the same arms shrunk for the unit suite).
//!
//! Per strategy: the undefended sampler must *fail* chi-square uniformity
//! and the defended sampler must *pass* it, with the Byzantine sample
//! share restored to the population share and the committee-capture
//! probability back within an order of magnitude of the uniform
//! baseline — at a measurable (reported) message overhead.

use scenarios::{run_scenario_seed, Backend, CoalitionStrategySpec, DefenseModel, ScenarioSpec};

fn shrink(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.n_initial = 96;
    spec.workload.draws = 1_500;
    spec
}

#[test]
fn every_strategy_biases_undefended_and_defense_restores_uniformity() {
    for strategy in CoalitionStrategySpec::all() {
        let attack = shrink(ScenarioSpec::preset_coalition(strategy, 0.10));
        let defended = shrink(ScenarioSpec::preset_coalition(strategy, 0.10).with_defense(3));
        let a = run_scenario_seed(&attack, Backend::Chord, 11);
        let d = run_scenario_seed(&defended, Backend::Chord, 11);
        let name = strategy.name();

        // The coalition fielded its budget and every draw resolved.
        assert!(a.byzantine_peers > 0, "{name}");
        assert_eq!(a.samples_ok, 1_500, "{name}");
        assert_eq!(d.samples_ok, 1_500, "{name}");

        // Undefended: uniformity demolished.
        assert!(
            a.chi_square_p < 1e-10,
            "{name} undefended should fail chi-square, p = {}",
            a.chi_square_p
        );
        // Defended: uniformity restored.
        assert!(
            d.chi_square_p > 1e-3,
            "{name} defended should pass chi-square, p = {}",
            d.chi_square_p
        );
        assert!(
            d.tv_from_uniform < a.tv_from_uniform,
            "{name}: defense must shrink TV ({} vs {})",
            d.tv_from_uniform,
            a.tv_from_uniform
        );

        // The coalition's sample share collapses back to its population
        // share, and the committee risk to the uniform baseline's order
        // of magnitude.
        assert!(
            (d.byzantine_sample_share - d.byzantine_population_share).abs() < 0.05,
            "{name}: defended share {} vs population {}",
            d.byzantine_sample_share,
            d.byzantine_population_share
        );
        assert!(
            d.committee_capture_p <= 10.0 * d.committee_capture_p_uniform.max(1e-12),
            "{name}: defended capture {} vs uniform {}",
            d.committee_capture_p,
            d.committee_capture_p_uniform
        );

        // The restoration is paid for in messages, visibly.
        assert!(
            d.mean_messages > 2.0 * a.mean_messages,
            "{name}: defense overhead must be measurable ({} vs {})",
            d.mean_messages,
            a.mean_messages
        );
    }
}

#[test]
fn sybil_and_arc_liar_coalitions_overrepresent_themselves_undefended() {
    for strategy in [
        CoalitionStrategySpec::SybilArcCapture,
        CoalitionStrategySpec::AdaptiveArcLiars,
    ] {
        let spec = shrink(ScenarioSpec::preset_coalition(strategy, 0.10));
        let r = run_scenario_seed(&spec, Backend::Chord, 11);
        assert!(
            r.byzantine_sample_share > 2.0 * r.byzantine_population_share,
            "{}: share {} vs population {}",
            strategy.name(),
            r.byzantine_sample_share,
            r.byzantine_population_share
        );
        assert!(
            r.committee_capture_p > 100.0 * r.committee_capture_p_uniform,
            "{}: committee risk must explode undefended",
            strategy.name()
        );
    }
}

#[test]
fn defense_is_invisible_on_honest_rings_except_in_cost() {
    let honest = shrink(ScenarioSpec::preset_honest_static());
    let mut guarded = shrink(ScenarioSpec::preset_honest_static()).with_defense(3);
    guarded.backends = vec![Backend::Chord];
    let plain = run_scenario_seed(&honest, Backend::Chord, 7);
    let defended = run_scenario_seed(&guarded, Backend::Chord, 7);
    // Bit-identical draw outcomes (same seed, same accept/reject map)...
    assert_eq!(plain.samples_ok, defended.samples_ok);
    assert_eq!(plain.tv_from_uniform, defended.tv_from_uniform);
    assert_eq!(plain.chi_square_p, defended.chi_square_p);
    assert_eq!(plain.mean_trials, defended.mean_trials);
    assert_eq!(defended.quorum_failures, 0);
    // ...at a strictly higher message cost.
    assert!(defended.mean_messages > plain.mean_messages);
}

#[test]
fn coalition_records_are_deterministic() {
    let spec = shrink(ScenarioSpec::preset_sybil_arc_capture().with_defense(3));
    let a = run_scenario_seed(&spec, Backend::Chord, 42);
    let b = run_scenario_seed(&spec, Backend::Chord, 42);
    assert_eq!(a, b);
    let c = run_scenario_seed(&spec, Backend::Chord, 43);
    assert_ne!(a, c);
}

#[test]
fn stale_oracle_pays_staleness_where_fresh_oracle_pays_nothing() {
    let mut spec = ScenarioSpec::preset_crash_churn();
    spec.n_initial = 96;
    spec.workload.draws = 800;
    let fresh = run_scenario_seed(&spec, Backend::Oracle, 19);
    let stale = run_scenario_seed(&spec, Backend::StaleOracle { lag_ticks: 2_000 }, 19);
    // Same placement and churn stream: the true population matches.
    assert_eq!(fresh.live_peers, stale.live_peers);
    // The fresh oracle never fails; the lagged view bounces off departed
    // peers but stays usable.
    assert_eq!(fresh.samples_failed, 0);
    assert!(stale.samples_failed > 0, "lag must cost something");
    let fail_rate = stale.samples_failed as f64 / 800.0;
    assert!(fail_rate < 0.6, "lagged view unusable: {fail_rate}");
    // Joiners inside the lag window are invisible to the stale view, so
    // its uniformity over the *current* population is measurably worse.
    assert!(stale.tv_from_uniform > fresh.tv_from_uniform);
    // Deterministic like every other arm.
    let again = run_scenario_seed(&spec, Backend::StaleOracle { lag_ticks: 2_000 }, 19);
    assert_eq!(stale, again);
}

#[test]
fn stale_arm_does_not_perturb_fresh_oracle_records() {
    // The stale replica's bookkeeping must not consume churn randomness:
    // crash-churn's oracle arm is byte-identical whether or not the
    // battery also runs a stale arm.
    let mut with_stale = ScenarioSpec::preset_crash_churn();
    with_stale.n_initial = 96;
    with_stale.workload.draws = 400;
    let mut without = with_stale.clone();
    without.backends = vec![Backend::Oracle, Backend::Chord];
    assert_eq!(
        run_scenario_seed(&with_stale, Backend::Oracle, 5),
        run_scenario_seed(&without, Backend::Oracle, 5),
    );
}

#[test]
fn defended_spec_validates_only_on_chord() {
    let mut spec = ScenarioSpec::preset_adaptive_liars().with_defense(3);
    assert!(matches!(spec.defense, DefenseModel::Quorum { entries: 3 }));
    spec.validate().unwrap();
    spec.backends = vec![Backend::Oracle];
    assert!(spec.validate().is_err(), "coalitions are chord-only");
}
