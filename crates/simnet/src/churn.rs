//! Churn workload generation.
//!
//! The paper's conclusion lists "evaluate it in practice" as an open
//! problem; experiment E11 does exactly that by running the sampler on a
//! Chord ring under membership churn. This module generates the membership
//! event schedule: node arrivals as a Poisson process, per-node session
//! lifetimes exponentially distributed (the standard M/M/∞ churn model used
//! in DHT studies).

use rand::Rng;

use crate::{SimDuration, SimTime};

/// What happens to a node at a churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnKind {
    /// A fresh node joins the overlay.
    Join,
    /// An existing node departs gracefully (notifying neighbours).
    Leave,
    /// An existing node crashes silently.
    Crash,
    /// Every live member of a failure domain crashes **atomically** — a
    /// rack loses power. The domain label resolves against the run's
    /// [`DomainMap`](crate::DomainMap).
    DomainCrash {
        /// Which domain fails.
        domain: u32,
    },
    /// A previously crashed/isolated domain comes back: its members
    /// rejoin the overlay (the healing edge of a partition).
    DomainHeal {
        /// Which domain recovers.
        domain: u32,
    },
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the change happens.
    pub time: SimTime,
    /// Join, leave, or crash.
    pub kind: ChurnKind,
}

/// Parameters of the M/M/∞ churn model.
///
/// # Example
///
/// ```
/// use simnet::churn::ChurnConfig;
/// use simnet::SimDuration;
/// use rand::SeedableRng;
///
/// let cfg = ChurnConfig {
///     arrivals_per_1000_ticks: 50.0,
///     mean_lifetime: SimDuration::from_ticks(10_000),
///     crash_fraction: 0.25,
///     horizon: SimDuration::from_ticks(100_000),
/// };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let schedule = cfg.generate(&mut rng);
/// assert!(!schedule.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Mean node arrivals per 1000 ticks (Poisson rate).
    pub arrivals_per_1000_ticks: f64,
    /// Mean session length; departures are scheduled `Exp(1/mean)` after
    /// the corresponding join.
    pub mean_lifetime: SimDuration,
    /// Fraction of departures that are crashes instead of graceful leaves,
    /// in `[0, 1]`.
    pub crash_fraction: f64,
    /// Generate events up to this time.
    pub horizon: SimDuration,
}

impl ChurnConfig {
    /// Generates the full event schedule, sorted by time.
    ///
    /// Departures whose lifetime extends beyond the horizon are dropped
    /// (the node simply survives the experiment).
    ///
    /// # Panics
    ///
    /// Panics if rates or fractions are out of range.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ChurnEvent> {
        assert!(
            self.arrivals_per_1000_ticks > 0.0 && self.arrivals_per_1000_ticks.is_finite(),
            "arrival rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.crash_fraction),
            "crash fraction must be in [0, 1]"
        );
        assert!(
            !self.mean_lifetime.is_zero(),
            "mean lifetime must be positive"
        );
        let horizon = self.horizon.ticks() as f64;
        let mean_gap = 1000.0 / self.arrivals_per_1000_ticks;
        let mean_life = self.mean_lifetime.ticks() as f64;

        let mut events = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += exponential(rng, mean_gap);
            if t >= horizon {
                break;
            }
            let join_at = SimTime::from_ticks(t as u64);
            events.push(ChurnEvent {
                time: join_at,
                kind: ChurnKind::Join,
            });
            let life = exponential(rng, mean_life);
            let depart = t + life;
            if depart < horizon {
                let kind = if rng.gen::<f64>() < self.crash_fraction {
                    ChurnKind::Crash
                } else {
                    ChurnKind::Leave
                };
                events.push(ChurnEvent {
                    time: SimTime::from_ticks(depart as u64),
                    kind,
                });
            }
        }
        events.sort_by_key(|e| e.time);
        events
    }
}

/// One phase of a piecewise-stationary churn schedule.
///
/// Each phase runs its own M/M/∞ parameters for `duration`; chaining
/// phases expresses the non-stationary workloads the static model cannot —
/// churn storms (a high-rate, crash-heavy phase between calm ones) and
/// flash crowds (an arrival burst with long lifetimes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPhase {
    /// How long this phase lasts.
    pub duration: SimDuration,
    /// Mean node arrivals per 1000 ticks during the phase.
    pub arrivals_per_1000_ticks: f64,
    /// Mean session length for nodes that join during the phase.
    pub mean_lifetime: SimDuration,
    /// Fraction of those nodes' departures that are crashes, in `[0, 1]`.
    pub crash_fraction: f64,
}

/// A multi-phase churn schedule (piecewise-stationary M/M/∞).
///
/// # Example: a churn storm between two calm phases
///
/// ```
/// use simnet::churn::{ChurnPhase, ChurnSchedule};
/// use simnet::SimDuration;
/// use rand::SeedableRng;
///
/// let calm = ChurnPhase {
///     duration: SimDuration::from_ticks(10_000),
///     arrivals_per_1000_ticks: 5.0,
///     mean_lifetime: SimDuration::from_ticks(50_000),
///     crash_fraction: 0.1,
/// };
/// let storm = ChurnPhase {
///     duration: SimDuration::from_ticks(5_000),
///     arrivals_per_1000_ticks: 200.0,
///     mean_lifetime: SimDuration::from_ticks(2_000),
///     crash_fraction: 0.9,
/// };
/// let schedule = ChurnSchedule::new(vec![calm, storm, calm]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let events = schedule.generate(&mut rng);
/// assert!(!events.is_empty());
/// assert_eq!(schedule.horizon().ticks(), 25_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSchedule {
    phases: Vec<ChurnPhase>,
    /// Correlated-failure events merged into the generated schedule.
    /// Empty by default, so plain schedules generate byte-identically to
    /// their pre-domain form.
    outages: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Builds a schedule from phases, run back to back.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has a zero duration.
    pub fn new(phases: Vec<ChurnPhase>) -> ChurnSchedule {
        assert!(
            !phases.is_empty(),
            "a churn schedule needs at least one phase"
        );
        assert!(
            phases.iter().all(|p| !p.duration.is_zero()),
            "churn phases must have positive duration"
        );
        ChurnSchedule {
            phases,
            outages: Vec::new(),
        }
    }

    /// Schedules a correlated crash: every live member of `domain` dies
    /// atomically at `at` and stays down for the rest of the run.
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside the schedule horizon.
    pub fn with_domain_crash(mut self, domain: u32, at: SimTime) -> ChurnSchedule {
        assert!(
            at < SimTime::from_ticks(self.horizon().ticks()),
            "domain crash at {at:?} is past the horizon"
        );
        self.outages.push(ChurnEvent {
            time: at,
            kind: ChurnKind::DomainCrash { domain },
        });
        self
    }

    /// Schedules a correlated partition: `domain` drops out atomically at
    /// `at` and heals (its members rejoin) `duration` later. A heal past
    /// the horizon is dropped — the partition outlives the run, making it
    /// equivalent to [`with_domain_crash`](Self::with_domain_crash).
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside the schedule horizon or `duration` is
    /// zero.
    pub fn with_domain_partition(
        mut self,
        domain: u32,
        at: SimTime,
        duration: SimDuration,
    ) -> ChurnSchedule {
        assert!(!duration.is_zero(), "a partition needs positive duration");
        self = self.with_domain_crash(domain, at);
        let heal = at.ticks() + duration.ticks();
        if heal < self.horizon().ticks() {
            self.outages.push(ChurnEvent {
                time: SimTime::from_ticks(heal),
                kind: ChurnKind::DomainHeal { domain },
            });
        }
        self
    }

    /// The scheduled correlated-failure events, in insertion order.
    pub fn outages(&self) -> &[ChurnEvent] {
        &self.outages
    }

    /// A single-phase schedule equivalent to `config`.
    pub fn constant(config: ChurnConfig) -> ChurnSchedule {
        ChurnSchedule::new(vec![ChurnPhase {
            duration: config.horizon,
            arrivals_per_1000_ticks: config.arrivals_per_1000_ticks,
            mean_lifetime: config.mean_lifetime,
            crash_fraction: config.crash_fraction,
        }])
    }

    /// The phases, in order.
    pub fn phases(&self) -> &[ChurnPhase] {
        &self.phases
    }

    /// Total schedule length (sum of phase durations).
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_ticks(self.phases.iter().map(|p| p.duration.ticks()).sum())
    }

    /// Generates the full event schedule, sorted by time.
    ///
    /// Arrivals in each phase follow that phase's Poisson rate; each
    /// arrival's lifetime is drawn from its join phase's distribution.
    /// Departures beyond the overall horizon are dropped (the node
    /// survives the run), matching [`ChurnConfig::generate`].
    ///
    /// # Panics
    ///
    /// Panics if any phase's rates or fractions are out of range.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ChurnEvent> {
        let horizon = self.horizon().ticks() as f64;
        let mut events = Vec::new();
        let mut phase_start = 0.0f64;
        for phase in &self.phases {
            assert!(
                phase.arrivals_per_1000_ticks > 0.0 && phase.arrivals_per_1000_ticks.is_finite(),
                "arrival rate must be positive"
            );
            assert!(
                (0.0..=1.0).contains(&phase.crash_fraction),
                "crash fraction must be in [0, 1]"
            );
            assert!(
                !phase.mean_lifetime.is_zero(),
                "mean lifetime must be positive"
            );
            let phase_end = phase_start + phase.duration.ticks() as f64;
            let mean_gap = 1000.0 / phase.arrivals_per_1000_ticks;
            let mean_life = phase.mean_lifetime.ticks() as f64;
            let mut t = phase_start;
            loop {
                t += exponential(rng, mean_gap);
                if t >= phase_end {
                    break;
                }
                events.push(ChurnEvent {
                    time: SimTime::from_ticks(t as u64),
                    kind: ChurnKind::Join,
                });
                let depart = t + exponential(rng, mean_life);
                if depart < horizon {
                    let kind = if rng.gen::<f64>() < phase.crash_fraction {
                        ChurnKind::Crash
                    } else {
                        ChurnKind::Leave
                    };
                    events.push(ChurnEvent {
                        time: SimTime::from_ticks(depart as u64),
                        kind,
                    });
                }
            }
            phase_start = phase_end;
        }
        // Outages merge after generation (stable sort keeps same-tick
        // organic events ahead of the correlated ones), so a schedule
        // with no outages generates byte-identically to one that never
        // heard of domains.
        events.extend(self.outages.iter().copied());
        events.sort_by_key(|e| e.time);
        events
    }
}

/// An `Exp(1/mean)` variate via inverse CDF.
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>();
    // 1 − u ∈ (0, 1]; ln of it is finite.
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn config() -> ChurnConfig {
        ChurnConfig {
            arrivals_per_1000_ticks: 100.0,
            mean_lifetime: SimDuration::from_ticks(5_000),
            crash_fraction: 0.5,
            horizon: SimDuration::from_ticks(50_000),
        }
    }

    #[test]
    fn schedule_is_sorted_and_within_horizon() {
        let events = config().generate(&mut rng());
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(events.iter().all(|e| e.time.ticks() < 50_000));
    }

    #[test]
    fn arrival_count_near_expectation() {
        // rate 100/1000 ticks × 50_000 ticks → 5000 expected joins.
        let events = config().generate(&mut rng());
        let joins = events.iter().filter(|e| e.kind == ChurnKind::Join).count() as f64;
        assert!((joins - 5000.0).abs() < 300.0, "got {joins} joins");
    }

    #[test]
    fn departures_never_exceed_joins() {
        let events = config().generate(&mut rng());
        let joins = events.iter().filter(|e| e.kind == ChurnKind::Join).count();
        let departs = events.len() - joins;
        assert!(departs <= joins);
        assert!(departs > 0, "with 5k-tick lifetimes most nodes depart");
    }

    #[test]
    fn crash_fraction_respected() {
        let events = config().generate(&mut rng());
        let crashes = events.iter().filter(|e| e.kind == ChurnKind::Crash).count() as f64;
        let leaves = events.iter().filter(|e| e.kind == ChurnKind::Leave).count() as f64;
        let frac = crashes / (crashes + leaves);
        assert!((frac - 0.5).abs() < 0.05, "crash fraction {frac}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = config().generate(&mut rng());
        let b = config().generate(&mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_panics() {
        let mut cfg = config();
        cfg.arrivals_per_1000_ticks = 0.0;
        let _ = cfg.generate(&mut rng());
    }

    #[test]
    #[should_panic(expected = "crash fraction")]
    fn bad_crash_fraction_panics() {
        let mut cfg = config();
        cfg.crash_fraction = 1.5;
        let _ = cfg.generate(&mut rng());
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = rng();
        let mean: f64 = (0..20000).map(|_| exponential(&mut r, 10.0)).sum::<f64>() / 20000.0;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    fn storm_schedule() -> ChurnSchedule {
        ChurnSchedule::new(vec![
            ChurnPhase {
                duration: SimDuration::from_ticks(20_000),
                arrivals_per_1000_ticks: 10.0,
                mean_lifetime: SimDuration::from_ticks(100_000),
                crash_fraction: 0.1,
            },
            ChurnPhase {
                duration: SimDuration::from_ticks(10_000),
                arrivals_per_1000_ticks: 300.0,
                mean_lifetime: SimDuration::from_ticks(3_000),
                crash_fraction: 0.9,
            },
        ])
    }

    #[test]
    fn schedule_constant_matches_config() {
        let a = config().generate(&mut rng());
        let b = ChurnSchedule::constant(config()).generate(&mut rng());
        assert_eq!(
            a, b,
            "single-phase schedule must replay ChurnConfig exactly"
        );
    }

    #[test]
    fn phased_schedule_shifts_rate_between_phases() {
        let events = storm_schedule().generate(&mut rng());
        let joins_calm = events
            .iter()
            .filter(|e| e.kind == ChurnKind::Join && e.time.ticks() < 20_000)
            .count() as f64;
        let joins_storm = events
            .iter()
            .filter(|e| e.kind == ChurnKind::Join && e.time.ticks() >= 20_000)
            .count() as f64;
        // Calm: 10/1k x 20k = 200 expected. Storm: 300/1k x 10k = 3000.
        assert!((joins_calm - 200.0).abs() < 80.0, "calm joins {joins_calm}");
        assert!(
            (joins_storm - 3000.0).abs() < 300.0,
            "storm joins {joins_storm}"
        );
    }

    #[test]
    fn phased_schedule_sorted_and_bounded() {
        let schedule = storm_schedule();
        let events = schedule.generate(&mut rng());
        assert_eq!(schedule.horizon().ticks(), 30_000);
        assert_eq!(schedule.phases().len(), 2);
        for pair in events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(events.iter().all(|e| e.time.ticks() < 30_000));
    }

    #[test]
    fn phased_schedule_deterministic_per_seed() {
        let a = storm_schedule().generate(&mut rng());
        let b = storm_schedule().generate(&mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn domain_crash_merges_into_the_schedule_in_time_order() {
        let schedule = storm_schedule().with_domain_crash(3, SimTime::from_ticks(12_000));
        assert_eq!(schedule.outages().len(), 1);
        let events = schedule.generate(&mut rng());
        let crash_pos = events
            .iter()
            .position(|e| e.kind == (ChurnKind::DomainCrash { domain: 3 }))
            .expect("domain crash must be in the schedule");
        assert_eq!(events[crash_pos].time.ticks(), 12_000);
        for pair in events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        // Everything except the injected event matches the plain
        // schedule: outages perturb nothing around them.
        let mut without = events.clone();
        without.remove(crash_pos);
        assert_eq!(without, storm_schedule().generate(&mut rng()));
    }

    #[test]
    fn domain_partition_schedules_crash_and_heal() {
        let schedule = storm_schedule().with_domain_partition(
            1,
            SimTime::from_ticks(5_000),
            SimDuration::from_ticks(4_000),
        );
        let events = schedule.generate(&mut rng());
        let crash = events
            .iter()
            .find(|e| e.kind == (ChurnKind::DomainCrash { domain: 1 }))
            .unwrap();
        let heal = events
            .iter()
            .find(|e| e.kind == (ChurnKind::DomainHeal { domain: 1 }))
            .unwrap();
        assert_eq!(crash.time.ticks(), 5_000);
        assert_eq!(heal.time.ticks(), 9_000);
    }

    #[test]
    fn partition_heal_past_horizon_is_dropped() {
        let schedule = storm_schedule().with_domain_partition(
            0,
            SimTime::from_ticks(25_000),
            SimDuration::from_ticks(100_000),
        );
        let events = schedule.generate(&mut rng());
        assert!(events
            .iter()
            .any(|e| e.kind == (ChurnKind::DomainCrash { domain: 0 })));
        assert!(!events
            .iter()
            .any(|e| matches!(e.kind, ChurnKind::DomainHeal { .. })));
    }

    #[test]
    #[should_panic(expected = "past the horizon")]
    fn domain_crash_past_horizon_panics() {
        let _ = storm_schedule().with_domain_crash(0, SimTime::from_ticks(30_000));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        let _ = ChurnSchedule::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_phase_panics() {
        let _ = ChurnSchedule::new(vec![ChurnPhase {
            duration: SimDuration::from_ticks(0),
            arrivals_per_1000_ticks: 1.0,
            mean_lifetime: SimDuration::from_ticks(10),
            crash_fraction: 0.0,
        }]);
    }
}
