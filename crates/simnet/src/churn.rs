//! Churn workload generation.
//!
//! The paper's conclusion lists "evaluate it in practice" as an open
//! problem; experiment E11 does exactly that by running the sampler on a
//! Chord ring under membership churn. This module generates the membership
//! event schedule: node arrivals as a Poisson process, per-node session
//! lifetimes exponentially distributed (the standard M/M/∞ churn model used
//! in DHT studies).

use rand::Rng;

use crate::{SimDuration, SimTime};

/// What happens to a node at a churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnKind {
    /// A fresh node joins the overlay.
    Join,
    /// An existing node departs gracefully (notifying neighbours).
    Leave,
    /// An existing node crashes silently.
    Crash,
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the change happens.
    pub time: SimTime,
    /// Join, leave, or crash.
    pub kind: ChurnKind,
}

/// Parameters of the M/M/∞ churn model.
///
/// # Example
///
/// ```
/// use simnet::churn::ChurnConfig;
/// use simnet::SimDuration;
/// use rand::SeedableRng;
///
/// let cfg = ChurnConfig {
///     arrivals_per_1000_ticks: 50.0,
///     mean_lifetime: SimDuration::from_ticks(10_000),
///     crash_fraction: 0.25,
///     horizon: SimDuration::from_ticks(100_000),
/// };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let schedule = cfg.generate(&mut rng);
/// assert!(!schedule.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Mean node arrivals per 1000 ticks (Poisson rate).
    pub arrivals_per_1000_ticks: f64,
    /// Mean session length; departures are scheduled `Exp(1/mean)` after
    /// the corresponding join.
    pub mean_lifetime: SimDuration,
    /// Fraction of departures that are crashes instead of graceful leaves,
    /// in `[0, 1]`.
    pub crash_fraction: f64,
    /// Generate events up to this time.
    pub horizon: SimDuration,
}

impl ChurnConfig {
    /// Generates the full event schedule, sorted by time.
    ///
    /// Departures whose lifetime extends beyond the horizon are dropped
    /// (the node simply survives the experiment).
    ///
    /// # Panics
    ///
    /// Panics if rates or fractions are out of range.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ChurnEvent> {
        assert!(
            self.arrivals_per_1000_ticks > 0.0 && self.arrivals_per_1000_ticks.is_finite(),
            "arrival rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.crash_fraction),
            "crash fraction must be in [0, 1]"
        );
        assert!(!self.mean_lifetime.is_zero(), "mean lifetime must be positive");
        let horizon = self.horizon.ticks() as f64;
        let mean_gap = 1000.0 / self.arrivals_per_1000_ticks;
        let mean_life = self.mean_lifetime.ticks() as f64;

        let mut events = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += exponential(rng, mean_gap);
            if t >= horizon {
                break;
            }
            let join_at = SimTime::from_ticks(t as u64);
            events.push(ChurnEvent {
                time: join_at,
                kind: ChurnKind::Join,
            });
            let life = exponential(rng, mean_life);
            let depart = t + life;
            if depart < horizon {
                let kind = if rng.gen::<f64>() < self.crash_fraction {
                    ChurnKind::Crash
                } else {
                    ChurnKind::Leave
                };
                events.push(ChurnEvent {
                    time: SimTime::from_ticks(depart as u64),
                    kind,
                });
            }
        }
        events.sort_by_key(|e| e.time);
        events
    }
}

/// An `Exp(1/mean)` variate via inverse CDF.
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>();
    // 1 − u ∈ (0, 1]; ln of it is finite.
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn config() -> ChurnConfig {
        ChurnConfig {
            arrivals_per_1000_ticks: 100.0,
            mean_lifetime: SimDuration::from_ticks(5_000),
            crash_fraction: 0.5,
            horizon: SimDuration::from_ticks(50_000),
        }
    }

    #[test]
    fn schedule_is_sorted_and_within_horizon() {
        let events = config().generate(&mut rng());
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(events.iter().all(|e| e.time.ticks() < 50_000));
    }

    #[test]
    fn arrival_count_near_expectation() {
        // rate 100/1000 ticks × 50_000 ticks → 5000 expected joins.
        let events = config().generate(&mut rng());
        let joins = events
            .iter()
            .filter(|e| e.kind == ChurnKind::Join)
            .count() as f64;
        assert!((joins - 5000.0).abs() < 300.0, "got {joins} joins");
    }

    #[test]
    fn departures_never_exceed_joins() {
        let events = config().generate(&mut rng());
        let joins = events.iter().filter(|e| e.kind == ChurnKind::Join).count();
        let departs = events.len() - joins;
        assert!(departs <= joins);
        assert!(departs > 0, "with 5k-tick lifetimes most nodes depart");
    }

    #[test]
    fn crash_fraction_respected() {
        let events = config().generate(&mut rng());
        let crashes = events.iter().filter(|e| e.kind == ChurnKind::Crash).count() as f64;
        let leaves = events.iter().filter(|e| e.kind == ChurnKind::Leave).count() as f64;
        let frac = crashes / (crashes + leaves);
        assert!((frac - 0.5).abs() < 0.05, "crash fraction {frac}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = config().generate(&mut rng());
        let b = config().generate(&mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_panics() {
        let mut cfg = config();
        cfg.arrivals_per_1000_ticks = 0.0;
        let _ = cfg.generate(&mut rng());
    }

    #[test]
    #[should_panic(expected = "crash fraction")]
    fn bad_crash_fraction_panics() {
        let mut cfg = config();
        cfg.crash_fraction = 1.5;
        let _ = cfg.generate(&mut rng());
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = rng();
        let mean: f64 = (0..20000).map(|_| exponential(&mut r, 10.0)).sum::<f64>() / 20000.0;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }
}
