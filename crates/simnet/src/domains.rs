//! Correlated failure domains over ring positions.
//!
//! Every failure model elsewhere in the workspace is independent
//! per-node; real deployments fail in correlated groups — a rack loses
//! power, a region partitions, a switch takes its whole pod down. A
//! [`DomainMap`] assigns each ring position a *domain label* so churn
//! schedules and fault plans can address "everything in rack 3" as one
//! unit.
//!
//! The default labeling is **sectoral**: domain `d` of `D` owns the
//! contiguous ring arc `[d·M/D, (d+1)·M/D)`. This matches the
//! clustered-ring placement geometry (a placement cluster lands inside
//! one sector when the cluster count divides the domain count) and —
//! deliberately — makes a domain crash the *worst case* for Chord:
//! a crashed sector is a contiguous dead arc, exactly the shape that
//! defeats an `r`-deep successor list. An explicit
//! [`DomainMap::from_labels`] flavor covers deployments whose racks are
//! interleaved around the ring instead.
//!
//! # Example
//!
//! ```
//! use simnet::DomainMap;
//!
//! let map = DomainMap::sectors(8, 1 << 32);
//! assert_eq!(map.domains(), 8);
//! assert_eq!(map.domain_of(0), 0);
//! assert_eq!(map.domain_of((1u64 << 32) - 1), 7);
//! ```

/// Domain labels over ring positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainMap {
    domains: u32,
    labeling: Labeling,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Labeling {
    /// Contiguous equal sectors of a ring with this modulus.
    Sectors { modulus: u128 },
    /// Explicit per-index labels (index order is the caller's contract).
    Labels(Vec<u32>),
}

impl DomainMap {
    /// `domains` equal contiguous sectors of a ring with `modulus`
    /// points: position `p` belongs to domain `p·domains/modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is zero or `modulus < domains` (a sector must
    /// contain at least one point).
    pub fn sectors(domains: u32, modulus: u128) -> DomainMap {
        assert!(domains > 0, "a domain map needs at least one domain");
        assert!(
            modulus >= u128::from(domains),
            "modulus {modulus} cannot split into {domains} non-empty sectors"
        );
        DomainMap {
            domains,
            labeling: Labeling::Sectors { modulus },
        }
    }

    /// Explicit labels: item `i` of `labels` is the domain of index `i`
    /// (whatever the caller indexes by — placement order, join order).
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty or any label is out of range for the
    /// implied domain count (`max + 1`).
    pub fn from_labels(labels: Vec<u32>) -> DomainMap {
        assert!(!labels.is_empty(), "a domain map needs at least one label");
        let domains = labels.iter().copied().max().expect("non-empty") + 1;
        DomainMap {
            domains,
            labeling: Labeling::Labels(labels),
        }
    }

    /// Number of domains.
    pub fn domains(&self) -> u32 {
        self.domains
    }

    /// The domain of ring position `p` (sectoral maps) or of index `p`
    /// (label maps).
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside the modulus (sectoral) or the label
    /// table (explicit).
    pub fn domain_of(&self, p: u64) -> u32 {
        match &self.labeling {
            Labeling::Sectors { modulus } => {
                assert!(
                    u128::from(p) < *modulus,
                    "point {p} outside modulus {modulus}"
                );
                (u128::from(p) * u128::from(self.domains) / modulus) as u32
            }
            Labeling::Labels(labels) => labels[usize::try_from(p).expect("index fits usize")],
        }
    }

    /// Whether position/index `p` belongs to domain `d`.
    pub fn contains(&self, d: u32, p: u64) -> bool {
        self.domain_of(p) == d
    }

    /// The sector `[start, end)` of domain `d`, for sectoral maps.
    ///
    /// `end` is exclusive and may equal the modulus (the last sector).
    /// Returns `None` for label maps (they have no arc geometry) or an
    /// out-of-range `d`.
    pub fn sector_bounds(&self, d: u32) -> Option<(u128, u128)> {
        let Labeling::Sectors { modulus } = &self.labeling else {
            return None;
        };
        if d >= self.domains {
            return None;
        }
        // Inverse of `domain_of`: the smallest p with p·D/M ≥ d is
        // ⌈d·M/D⌉.
        let start = (u128::from(d) * modulus).div_ceil(u128::from(self.domains));
        let end = (u128::from(d + 1) * modulus).div_ceil(u128::from(self.domains));
        Some((start, end))
    }

    /// The fraction of the ring each domain covers (sectoral maps cover
    /// `1/domains` each by construction).
    pub fn domain_fraction(&self) -> f64 {
        1.0 / f64::from(self.domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sectors_partition_the_ring() {
        let m = 1u128 << 20;
        let map = DomainMap::sectors(8, m);
        // Every point has exactly one in-range label, non-decreasing
        // around the ring.
        let mut last = 0;
        for p in (0..(m as u64)).step_by(1 << 12) {
            let d = map.domain_of(p);
            assert!(d < 8);
            assert!(d >= last, "sector labels must be monotone");
            last = d;
        }
        assert_eq!(map.domain_of(0), 0);
        assert_eq!(map.domain_of((m as u64) - 1), 7);
    }

    #[test]
    fn sector_bounds_invert_domain_of() {
        let m = 1_000_003u128; // prime: sectors are uneven by one point
        let map = DomainMap::sectors(7, m);
        let mut covered = 0u128;
        for d in 0..7 {
            let (start, end) = map.sector_bounds(d).unwrap();
            assert!(start < end);
            covered += end - start;
            assert_eq!(map.domain_of(start as u64), d, "start of sector {d}");
            assert_eq!(map.domain_of((end - 1) as u64), d, "end of sector {d}");
            if end < m {
                assert_eq!(map.domain_of(end as u64), d + 1);
            }
        }
        assert_eq!(covered, m, "sectors must partition the ring exactly");
        assert_eq!(map.sector_bounds(7), None);
    }

    #[test]
    fn full_modulus_sectors_label_without_overflow() {
        let map = DomainMap::sectors(4, 1u128 << 64);
        assert_eq!(map.domain_of(0), 0);
        assert_eq!(map.domain_of(u64::MAX), 3);
        assert_eq!(map.domain_of(1u64 << 63), 2);
        let (start, end) = map.sector_bounds(3).unwrap();
        assert_eq!(end, 1u128 << 64);
        assert_eq!(map.domain_of(start as u64), 3);
    }

    #[test]
    fn labels_map_by_index() {
        let map = DomainMap::from_labels(vec![0, 1, 1, 2, 0]);
        assert_eq!(map.domains(), 3);
        assert_eq!(map.domain_of(0), 0);
        assert_eq!(map.domain_of(3), 2);
        assert!(map.contains(1, 2));
        assert!(!map.contains(1, 3));
        assert_eq!(map.sector_bounds(0), None, "label maps have no arcs");
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_domains_panics() {
        let _ = DomainMap::sectors(0, 100);
    }

    #[test]
    #[should_panic(expected = "outside modulus")]
    fn out_of_range_point_panics() {
        let map = DomainMap::sectors(2, 100);
        let _ = map.domain_of(100);
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn empty_labels_panic() {
        let _ = DomainMap::from_labels(vec![]);
    }
}
