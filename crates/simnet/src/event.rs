use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A deterministic future-event list.
///
/// Events fire in timestamp order; events with equal timestamps fire in the
/// order they were scheduled (FIFO), which makes simulation runs bit-for-bit
/// reproducible — an essential property for the experiment harness, whose
/// tables must regenerate identically from a master seed.
///
/// # Example
///
/// ```
/// use simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(5), "b");
/// q.schedule(SimTime::from_ticks(3), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(3), "a")));
/// assert_eq!(q.peek_time(), Some(SimTime::from_ticks(5)));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops the next event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<T: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: T) {
        for (time, event) in iter {
            self.schedule(time, event);
        }
    }
}

/// A wakeup token: the proof a queued timeout event carries that it was
/// armed by generation `generation` of slot `id` in a [`WakeupSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wakeup {
    /// Slot this token was armed from.
    pub id: u32,
    /// Slot generation at arm time; stale once the slot is cancelled.
    pub generation: u32,
}

/// Generation-guarded cancellation for [`EventQueue`] wakeups.
///
/// The queue has no removal API — deleting from the middle of a binary
/// heap would cost a linear scan, and most simulated timeouts are
/// cancelled (the guarded operation usually completes first). Instead a
/// scheduler allocates a slot per guarded operation, embeds the
/// [`Wakeup`] token from [`arm`](WakeupSet::arm) in the queued event, and
/// cancels by bumping the slot's generation: the event still pops, but
/// [`fires`](WakeupSet::fires) reports it stale and the scheduler drops
/// it. Arming again after a cancel issues a fresh token, so a timeout
/// from a *previous* arming can never fire against a later one.
///
/// # Example
///
/// ```
/// use simnet::{EventQueue, SimTime, WakeupSet};
///
/// let mut wakeups = WakeupSet::new();
/// let mut q = EventQueue::new();
/// let slot = wakeups.alloc();
/// q.schedule(SimTime::from_ticks(10), wakeups.arm(slot));
/// wakeups.cancel(slot); // the operation completed at t=4
/// let (_, token) = q.pop().unwrap();
/// assert!(!wakeups.fires(token), "a cancelled wakeup must not fire");
/// ```
#[derive(Debug, Clone, Default)]
pub struct WakeupSet {
    generations: Vec<u32>,
}

impl WakeupSet {
    /// Creates an empty set.
    pub fn new() -> WakeupSet {
        WakeupSet::default()
    }

    /// Allocates a new slot (one per guarded operation); slots are never
    /// freed, so ids stay valid for the set's lifetime.
    pub fn alloc(&mut self) -> u32 {
        let id = u32::try_from(self.generations.len()).expect("wakeup slots exhausted");
        self.generations.push(0);
        id
    }

    /// Arms slot `id`, returning the token the queued event must carry.
    /// The token stays live until the slot's next [`cancel`](WakeupSet::cancel).
    pub fn arm(&self, id: u32) -> Wakeup {
        Wakeup {
            id,
            generation: self.generations[id as usize],
        }
    }

    /// Cancels slot `id`: every token armed before this call goes stale.
    pub fn cancel(&mut self, id: u32) {
        self.generations[id as usize] += 1;
    }

    /// Whether `token` is still live (its slot has not been cancelled
    /// since it was armed).
    pub fn fires(&self, token: Wakeup) -> bool {
        self.generations[token.id as usize] == token.generation
    }

    /// Number of allocated slots.
    pub fn len(&self) -> usize {
        self.generations.len()
    }

    /// Whether no slots have been allocated.
    pub fn is_empty(&self) -> bool {
        self.generations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "a");
        q.schedule(t(5), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(t(5), "c");
        // "b" was scheduled before "c".
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(9), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(9)));
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_due_respects_clock() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "x");
        assert_eq!(q.pop_due(t(9)), None);
        assert_eq!(q.pop_due(t(10)), Some((t(10), "x")));
        assert_eq!(q.pop_due(t(100)), None); // empty now
    }

    #[test]
    fn extend_schedules_all() {
        let mut q = EventQueue::new();
        q.extend([(t(2), "b"), (t(1), "a")]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "a");
    }
}
