use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A deterministic future-event list.
///
/// Events fire in timestamp order; events with equal timestamps fire in the
/// order they were scheduled (FIFO), which makes simulation runs bit-for-bit
/// reproducible — an essential property for the experiment harness, whose
/// tables must regenerate identically from a master seed.
///
/// # Example
///
/// ```
/// use simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(5), "b");
/// q.schedule(SimTime::from_ticks(3), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(3), "a")));
/// assert_eq!(q.peek_time(), Some(SimTime::from_ticks(5)));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops the next event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<T: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: T) {
        for (time, event) in iter {
            self.schedule(time, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "a");
        q.schedule(t(5), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(t(5), "c");
        // "b" was scheduled before "c".
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(9), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(9)));
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_due_respects_clock() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "x");
        assert_eq!(q.pop_due(t(9)), None);
        assert_eq!(q.pop_due(t(10)), Some((t(10), "x")));
        assert_eq!(q.pop_due(t(100)), None); // empty now
    }

    #[test]
    fn extend_schedules_all() {
        let mut q = EventQueue::new();
        q.extend([(t(2), "b"), (t(1), "a")]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "a");
    }
}
