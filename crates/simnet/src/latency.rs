use core::fmt;

use rand::Rng;

use crate::SimDuration;

/// A per-message network delay distribution.
///
/// The paper counts latency in units of sequential message delays, which
/// corresponds to [`LatencyModel::Constant`] with one tick. The other models
/// let the experiments check that the *shape* of the latency results
/// (Theorem 7's `O(log n)`) is insensitive to delay variance, as it must be
/// since delays compose additively along the lookup path.
///
/// # Example
///
/// ```
/// use simnet::LatencyModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = LatencyModel::Uniform { lo: 10, hi: 20 }.sample(&mut rng);
/// assert!((10..=20).contains(&d.ticks()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly `ticks` ticks.
    Constant(u64),
    /// Delays drawn uniformly from `[lo, hi]` ticks.
    Uniform {
        /// Smallest possible delay.
        lo: u64,
        /// Largest possible delay (inclusive).
        hi: u64,
    },
    /// Log-normally distributed delays — the classic heavy-tailed WAN model.
    /// `median` is the median delay in ticks; `sigma` is the log-space
    /// standard deviation (0 degenerates to constant).
    LogNormal {
        /// Median delay in ticks.
        median: u64,
        /// Log-space standard deviation.
        sigma: f64,
    },
}

impl LatencyModel {
    /// The canonical unit-delay model used when reporting latency in
    /// "message delays" like the paper.
    pub const UNIT: LatencyModel = LatencyModel::Constant(1);

    /// Draws one message delay.
    ///
    /// Delays are always at least one tick — a zero-delay network would let
    /// unbounded work happen in zero simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the model is malformed (`lo > hi`, or a non-finite or
    /// negative `sigma`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let ticks = match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency lo {lo} > hi {hi}");
                rng.gen_range(lo..=hi)
            }
            LatencyModel::LogNormal { median, sigma } => {
                assert!(
                    sigma.is_finite() && sigma >= 0.0,
                    "log-normal sigma must be finite and non-negative"
                );
                let z = standard_normal(rng);
                let factor = (sigma * z).exp();
                (median as f64 * factor).round() as u64
            }
        };
        SimDuration::from_ticks(ticks.max(1))
    }

    /// The mean delay of the model in ticks (exact, not sampled).
    pub fn mean_ticks(&self) -> f64 {
        match *self {
            LatencyModel::Constant(t) => t.max(1) as f64,
            LatencyModel::Uniform { lo, hi } => (lo.max(1) as f64 + hi.max(1) as f64) / 2.0,
            LatencyModel::LogNormal { median, sigma } => {
                median as f64 * (sigma * sigma / 2.0).exp()
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::UNIT
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LatencyModel::Constant(t) => write!(f, "constant({t})"),
            LatencyModel::Uniform { lo, hi } => write!(f, "uniform({lo}, {hi})"),
            LatencyModel::LogNormal { median, sigma } => {
                write!(f, "lognormal(median={median}, sigma={sigma})")
            }
        }
    }
}

/// One standard-normal variate via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn constant_is_constant() {
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(LatencyModel::Constant(7).sample(&mut r).ticks(), 7);
        }
    }

    #[test]
    fn zero_constant_clamps_to_one_tick() {
        let mut r = rng();
        assert_eq!(LatencyModel::Constant(0).sample(&mut r).ticks(), 1);
        assert_eq!(LatencyModel::Constant(0).mean_ticks(), 1.0);
    }

    #[test]
    fn uniform_within_bounds_and_spread() {
        let mut r = rng();
        let m = LatencyModel::Uniform { lo: 5, hi: 15 };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let t = m.sample(&mut r).ticks();
            assert!((5..=15).contains(&t));
            seen.insert(t);
        }
        assert_eq!(seen.len(), 11, "all values in range should appear");
    }

    #[test]
    fn lognormal_median_approximately_right() {
        let mut r = rng();
        let m = LatencyModel::LogNormal {
            median: 100,
            sigma: 0.5,
        };
        let mut samples: Vec<u64> = (0..4001).map(|_| m.sample(&mut r).ticks()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!(
            (80..=120).contains(&median),
            "empirical median {median} too far from 100"
        );
    }

    #[test]
    fn lognormal_mean_formula() {
        let m = LatencyModel::LogNormal {
            median: 100,
            sigma: 0.5,
        };
        assert!((m.mean_ticks() - 100.0 * (0.125f64).exp()).abs() < 1e-9);
        let mut r = rng();
        let w: f64 = (0..20000)
            .map(|_| m.sample(&mut r).ticks() as f64)
            .sum::<f64>()
            / 20000.0;
        assert!((w - m.mean_ticks()).abs() / m.mean_ticks() < 0.05);
    }

    #[test]
    #[should_panic(expected = "lo 5 > hi 2")]
    fn bad_uniform_panics() {
        let _ = LatencyModel::Uniform { lo: 5, hi: 2 }.sample(&mut rng());
    }

    #[test]
    fn default_is_unit() {
        assert_eq!(LatencyModel::default(), LatencyModel::UNIT);
        assert_eq!(LatencyModel::UNIT.mean_ticks(), 1.0);
    }

    #[test]
    fn displays() {
        assert_eq!(LatencyModel::Constant(3).to_string(), "constant(3)");
        assert!(LatencyModel::Uniform { lo: 1, hi: 2 }
            .to_string()
            .contains("uniform"));
        assert!(LatencyModel::LogNormal {
            median: 9,
            sigma: 1.0
        }
        .to_string()
        .contains("lognormal"));
    }
}
