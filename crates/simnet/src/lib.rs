//! Deterministic discrete-event network simulation substrate.
//!
//! The paper measures its algorithm in two currencies — **messages sent**
//! and **latency** (sequential message delays). This crate supplies the
//! machinery to account for both in a reproducible way:
//!
//! * [`SimTime`] / [`SimDuration`] — integer simulated clock.
//! * [`EventQueue`] — a deterministic future-event list (ties broken by
//!   insertion order), the core of the event-driven churn simulations.
//! * [`LatencyModel`] — pluggable per-message delay distributions
//!   (constant, uniform, log-normal) so experiments can check that the
//!   *shape* of results is robust to the delay model.
//! * [`Metrics`] — a thread-safe counter registry for message accounting.
//! * [`rng`] — SplitMix64 seed derivation so every component of every
//!   experiment gets an independent, reproducible random stream.
//! * [`churn`] — Poisson join/leave workload generation for the E11
//!   experiments, plus correlated domain-outage events.
//! * [`DomainMap`] — rack/region failure-domain labels over ring
//!   positions, addressed as units by the churn schedule's
//!   domain-crash/partition events and by chord's domain fault plans.
//!
//! # Example: draining events in deterministic order
//!
//! ```
//! use simnet::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_ticks(20), "late");
//! q.schedule(SimTime::from_ticks(10), "early-a");
//! q.schedule(SimTime::from_ticks(10), "early-b"); // same time: FIFO
//! let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, vec!["early-a", "early-b", "late"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
mod domains;
mod event;
mod latency;
mod metrics;
pub mod rng;
mod time;

pub use domains::DomainMap;
pub use event::{EventQueue, Wakeup, WakeupSet};
pub use latency::LatencyModel;
pub use metrics::Metrics;
pub use time::{SimDuration, SimTime};
