use core::fmt;
use std::collections::BTreeMap;

use parking_lot::Mutex;

/// A thread-safe registry of named monotonic counters.
///
/// Chord increments counters per message kind (`lookup.hop`, `stabilize`,
/// `notify`, …) while the sampler and the experiment harness read snapshots
/// before and after an operation to attribute costs. `BTreeMap` keeps
/// snapshots deterministically ordered for table output.
///
/// # Example
///
/// ```
/// use simnet::Metrics;
///
/// let m = Metrics::new();
/// m.incr("lookup.hop");
/// m.add("lookup.hop", 2);
/// assert_eq!(m.get("lookup.hop"), 3);
/// assert_eq!(m.get("unknown"), 0);
/// ```
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Increments `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut map = self.counters.lock();
        *map.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefixed(&self, prefix: &str) -> u64 {
        self.counters
            .lock()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.counters.lock().clone()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.counters.lock().clear();
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        if snap.is_empty() {
            return write!(f, "(no metrics)");
        }
        for (i, (k, v)) in snap.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_add_get() {
        let m = Metrics::new();
        m.incr("a");
        m.incr("a");
        m.add("b", 5);
        assert_eq!(m.get("a"), 2);
        assert_eq!(m.get("b"), 5);
        assert_eq!(m.get("c"), 0);
    }

    #[test]
    fn prefix_sum() {
        let m = Metrics::new();
        m.add("lookup.hop", 3);
        m.add("lookup.start", 1);
        m.add("stabilize", 10);
        assert_eq!(m.sum_prefixed("lookup."), 4);
        assert_eq!(m.sum_prefixed(""), 14);
        assert_eq!(m.sum_prefixed("nothing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_detached() {
        let m = Metrics::new();
        m.incr("z");
        m.incr("a");
        let snap = m.snapshot();
        let keys: Vec<_> = snap.keys().cloned().collect();
        assert_eq!(keys, vec!["a", "z"]);
        m.incr("a");
        assert_eq!(snap["a"], 1, "snapshot must not see later increments");
    }

    #[test]
    fn reset_clears() {
        let m = Metrics::new();
        m.incr("x");
        m.reset();
        assert_eq!(m.get("x"), 0);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn concurrent_increments_all_land() {
        let m = std::sync::Arc::new(Metrics::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.incr("shared");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get("shared"), 8000);
    }

    #[test]
    fn display_lists_counters() {
        let m = Metrics::new();
        assert_eq!(m.to_string(), "(no metrics)");
        m.add("k", 2);
        assert_eq!(m.to_string(), "k = 2");
    }
}
