use core::fmt;
use std::collections::BTreeMap;

use telemetry::Recorder;

/// A thread-safe registry of named monotonic counters.
///
/// Chord increments counters per message kind (`lookup.hop`, `stabilize`,
/// `notify`, …) while the sampler and the experiment harness read snapshots
/// before and after an operation to attribute costs. Snapshots are
/// deterministically ordered for table output.
///
/// Since the telemetry rework this type is a thin compatibility shim over
/// [`telemetry::Recorder`]: the string-keyed methods resolve names through
/// the recorder's registry (a lock plus a scan per call) and are kept only
/// for cold paths and existing tests. **Hot paths should pre-register
/// handles** via [`Metrics::recorder`] →
/// [`Recorder::counter`](telemetry::Recorder::counter) and increment
/// through [`telemetry::CounterId`], which is a single lock-free atomic
/// add per event.
///
/// # Example
///
/// ```
/// use simnet::Metrics;
///
/// let m = Metrics::new();
/// m.incr("lookup.hop");
/// m.add("lookup.hop", 2);
/// assert_eq!(m.get("lookup.hop"), 3);
/// assert_eq!(m.get("unknown"), 0);
/// ```
#[derive(Debug, Default)]
pub struct Metrics {
    recorder: Recorder,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The underlying recorder: interned counter/histogram handles,
    /// lookup traces, and cost attribution scopes live there.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Increments `name` by one.
    ///
    /// Deprecated for hot paths: registers/looks up the name on every
    /// call. Pre-register a `CounterId` via [`Metrics::recorder`] instead.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments `name` by `delta`.
    ///
    /// Deprecated for hot paths: registers/looks up the name on every
    /// call. Pre-register a `CounterId` via [`Metrics::recorder`] instead.
    pub fn add(&self, name: &str, delta: u64) {
        let id = self.recorder.counter(name);
        self.recorder.add(id, delta);
    }

    /// Current value of `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.recorder.counter_named(name)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefixed(&self, prefix: &str) -> u64 {
        self.recorder.sum_prefixed(prefix)
    }

    /// A point-in-time copy of every counter that has been incremented.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.recorder.snapshot()
    }

    /// Closes the current observation window and returns its per-counter
    /// deltas — see [`Recorder::reset_window`](telemetry::Recorder::reset_window)
    /// for the delta semantics (computed per slot, never by diffing
    /// zero-skipping snapshots).
    pub fn reset_window(&self) -> telemetry::WindowSnapshot {
        self.recorder.reset_window()
    }

    /// Resets every counter to zero (registered handles stay valid).
    pub fn reset(&self) {
        self.recorder.reset();
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        if snap.is_empty() {
            return write!(f, "(no metrics)");
        }
        for (i, (k, v)) in snap.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_add_get() {
        let m = Metrics::new();
        m.incr("a");
        m.incr("a");
        m.add("b", 5);
        assert_eq!(m.get("a"), 2);
        assert_eq!(m.get("b"), 5);
        assert_eq!(m.get("c"), 0);
    }

    #[test]
    fn prefix_sum() {
        let m = Metrics::new();
        m.add("lookup.hop", 3);
        m.add("lookup.start", 1);
        m.add("stabilize", 10);
        assert_eq!(m.sum_prefixed("lookup."), 4);
        assert_eq!(m.sum_prefixed(""), 14);
        assert_eq!(m.sum_prefixed("nothing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_detached() {
        let m = Metrics::new();
        m.incr("z");
        m.incr("a");
        let snap = m.snapshot();
        let keys: Vec<_> = snap.keys().cloned().collect();
        assert_eq!(keys, vec!["a", "z"]);
        m.incr("a");
        assert_eq!(snap["a"], 1, "snapshot must not see later increments");
    }

    #[test]
    fn reset_clears() {
        let m = Metrics::new();
        m.incr("x");
        m.reset();
        assert_eq!(m.get("x"), 0);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn concurrent_increments_all_land() {
        let m = std::sync::Arc::new(Metrics::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.incr("shared");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get("shared"), 8000);
    }

    #[test]
    fn display_lists_counters() {
        let m = Metrics::new();
        assert_eq!(m.to_string(), "(no metrics)");
        m.add("k", 2);
        assert_eq!(m.to_string(), "k = 2");
    }
}
