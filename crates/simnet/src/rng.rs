//! Reproducible seed derivation.
//!
//! Every experiment derives the seeds of its components (peer placement,
//! sampler draws, latency noise, churn schedule) from one master seed
//! through [`derive_seed`], so runs are bit-reproducible while streams stay
//! statistically independent. SplitMix64 is the standard generator for this
//! purpose (it is what `java.util.SplittableRandom` and many simulators use
//! for seeding).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Passes BigCrush as a 64-bit mixer; used here only for seed derivation.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for stream `stream` of a master seed.
///
/// Different `(master, stream)` pairs give decorrelated seeds; the same pair
/// always gives the same seed.
///
/// # Example
///
/// ```
/// use simnet::rng::derive_seed;
///
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut state = master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
    // Two rounds decorrelate master/stream structure (e.g. sequential
    // masters with sequential streams).
    splitmix64(&mut state);
    splitmix64(&mut state)
}

/// A seeded [`StdRng`] for stream `stream` of `master`.
pub fn stream_rng(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the public-domain implementation
        // by Sebastiano Vigna.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn derive_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
    }

    #[test]
    fn nearby_masters_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..100u64 {
            for stream in 0..100u64 {
                assert!(
                    seen.insert(derive_seed(master, stream)),
                    "collision at ({master}, {stream})"
                );
            }
        }
    }

    #[test]
    fn stream_rngs_differ() {
        let a: u64 = stream_rng(1, 0).gen();
        let b: u64 = stream_rng(1, 1).gen();
        assert_ne!(a, b);
        let a2: u64 = stream_rng(1, 0).gen();
        assert_eq!(a, a2);
    }
}
