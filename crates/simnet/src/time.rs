use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in integer ticks since simulation
/// start.
///
/// One tick is "one unit of message delay" unless a
/// [`LatencyModel`](crate::LatencyModel) says otherwise; the paper's latency
/// bounds (`O(log n)` message delays) are naturally expressed in ticks.
///
/// # Example
///
/// ```
/// use simnet::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_ticks(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// A time `ticks` after the epoch.
    pub const fn from_ticks(ticks: u64) -> SimTime {
        SimTime(ticks)
    }

    /// Ticks since the epoch.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating advance by a duration.
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `ticks` ticks.
    pub const fn from_ticks(ticks: u64) -> SimDuration {
        SimDuration(ticks)
    }

    /// Length in ticks.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whether the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated clock overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_ticks(10);
        let d = SimDuration::from_ticks(7);
        assert_eq!((t + d).ticks(), 17);
        assert_eq!((t + d) - t, d);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2.ticks(), 17);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ticks).sum();
        assert_eq!(total.ticks(), 10);
        let mut d = SimDuration::from_ticks(1);
        d += SimDuration::from_ticks(2);
        assert_eq!(d.ticks(), 3);
    }

    #[test]
    fn saturating_add_caps() {
        let t = SimTime::from_ticks(u64::MAX);
        assert_eq!(
            t.saturating_add(SimDuration::from_ticks(5)).ticks(),
            u64::MAX
        );
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_difference_panics() {
        let _ = SimTime::ZERO - SimTime::from_ticks(1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn clock_overflow_panics() {
        let _ = SimTime::from_ticks(u64::MAX) + SimDuration::from_ticks(1);
    }

    #[test]
    fn zero_checks_and_display() {
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_ticks(1).is_zero());
        assert_eq!(SimTime::from_ticks(3).to_string(), "t=3");
        assert_eq!(SimDuration::from_ticks(3).to_string(), "3 ticks");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimDuration::from_ticks(1) < SimDuration::from_ticks(2));
    }
}
