//! Property-based tests for `simnet::churn` and the SplitMix64 stream
//! derivation it leans on: the sweep harness's determinism guarantees are
//! only as strong as these invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::churn::{ChurnConfig, ChurnEvent, ChurnKind, ChurnPhase, ChurnSchedule};
use simnet::rng::derive_seed;
use simnet::SimDuration;

fn arb_config() -> impl Strategy<Value = ChurnConfig> {
    (1u64..200, 1_000u64..50_000, 0u64..=100).prop_map(|(rate, lifetime, crash_pct)| ChurnConfig {
        arrivals_per_1000_ticks: rate as f64,
        mean_lifetime: SimDuration::from_ticks(lifetime),
        crash_fraction: crash_pct as f64 / 100.0,
        horizon: SimDuration::from_ticks(50_000),
    })
}

fn generate(config: &ChurnConfig, seed: u64) -> Vec<ChurnEvent> {
    config.generate(&mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The realized Poisson arrival count stays within 6 sigma of the
    /// configured rate (count ~ Poisson(lambda), sigma = sqrt(lambda)).
    #[test]
    fn poisson_rate_within_tolerance(config in arb_config(), seed in any::<u64>()) {
        let events = generate(&config, seed);
        let joins = events.iter().filter(|e| e.kind == ChurnKind::Join).count() as f64;
        let expected = config.arrivals_per_1000_ticks * 50.0;
        let sigma = expected.sqrt();
        prop_assert!(
            (joins - expected).abs() <= 6.0 * sigma + 3.0,
            "joins {} vs expected {} (sigma {})", joins, expected, sigma
        );
    }

    /// Identical seeds give byte-identical event streams; the schedule is
    /// a pure function of (config, seed).
    #[test]
    fn identical_seeds_are_byte_identical(config in arb_config(), seed in any::<u64>()) {
        let a = generate(&config, seed);
        let b = generate(&config, seed);
        prop_assert_eq!(a, b);
    }

    /// Different seeds give different schedules (a collision would mean
    /// the generator ignores its seed).
    #[test]
    fn different_seeds_differ(config in arb_config(), seed in any::<u64>()) {
        let a = generate(&config, seed);
        let b = generate(&config, seed ^ 0xDEAD_BEEF);
        prop_assert_ne!(a, b);
    }

    /// Schedules are sorted and never emit more departures than joins.
    #[test]
    fn schedules_are_sorted_and_conservative(config in arb_config(), seed in any::<u64>()) {
        let events = generate(&config, seed);
        for pair in events.windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
        }
        let joins = events.iter().filter(|e| e.kind == ChurnKind::Join).count();
        prop_assert!(events.len() - joins <= joins);
        prop_assert!(events.iter().all(|e| e.time.ticks() < 50_000));
    }

    /// Derived SplitMix64 streams are independent: distinct stream indexes
    /// of one master never collide across a broad window, and the streams
    /// they seed produce uncorrelated schedules.
    #[test]
    fn derived_streams_are_independent(master in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..512u64 {
            prop_assert!(
                seen.insert(derive_seed(master, stream)),
                "stream collision at master {} stream {}", master, stream
            );
        }
        // Two derived streams drive visibly different schedules.
        let config = ChurnConfig {
            arrivals_per_1000_ticks: 20.0,
            mean_lifetime: SimDuration::from_ticks(10_000),
            crash_fraction: 0.5,
            horizon: SimDuration::from_ticks(50_000),
        };
        let a = generate(&config, derive_seed(master, 0));
        let b = generate(&config, derive_seed(master, 1));
        prop_assert_ne!(a, b);
    }

    /// A single-phase schedule replays `ChurnConfig::generate` exactly —
    /// the compatibility contract `ChurnSimulation::new` relies on.
    #[test]
    fn constant_schedule_replays_config(config in arb_config(), seed in any::<u64>()) {
        let direct = generate(&config, seed);
        let scheduled = ChurnSchedule::constant(config)
            .generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(direct, scheduled);
    }

    /// Per-phase rates hold inside each phase of a phased schedule.
    #[test]
    fn phased_rates_hold_per_phase(
        calm_rate in 1u64..40,
        storm_rate in 100u64..400,
        seed in any::<u64>(),
    ) {
        let schedule = ChurnSchedule::new(vec![
            ChurnPhase {
                duration: SimDuration::from_ticks(20_000),
                arrivals_per_1000_ticks: calm_rate as f64,
                mean_lifetime: SimDuration::from_ticks(1_000_000),
                crash_fraction: 0.0,
            },
            ChurnPhase {
                duration: SimDuration::from_ticks(20_000),
                arrivals_per_1000_ticks: storm_rate as f64,
                mean_lifetime: SimDuration::from_ticks(1_000_000),
                crash_fraction: 0.0,
            },
        ]);
        let events = schedule.generate(&mut StdRng::seed_from_u64(seed));
        let calm = events.iter()
            .filter(|e| e.kind == ChurnKind::Join && e.time.ticks() < 20_000)
            .count() as f64;
        let storm = events.iter()
            .filter(|e| e.kind == ChurnKind::Join && e.time.ticks() >= 20_000)
            .count() as f64;
        let (calm_exp, storm_exp) = (calm_rate as f64 * 20.0, storm_rate as f64 * 20.0);
        prop_assert!(
            (calm - calm_exp).abs() <= 6.0 * calm_exp.sqrt() + 3.0,
            "calm joins {} vs {}", calm, calm_exp
        );
        prop_assert!(
            (storm - storm_exp).abs() <= 6.0 * storm_exp.sqrt() + 3.0,
            "storm joins {} vs {}", storm, storm_exp
        );
    }
}
