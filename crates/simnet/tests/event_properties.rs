//! Ordering and cancellation guarantees of the event substrate.
//!
//! The async lookup engine multiplexes thousands of in-flight requests
//! over one [`EventQueue`], so two properties carry the whole
//! determinism story: ties at one timestamp must break FIFO (bit-for-bit
//! replays), and a cancelled timeout wakeup must *never* fire after the
//! operation it guarded completed (no double-delivery).

use proptest::prelude::*;
use simnet::{EventQueue, SimTime, WakeupSet};

fn t(ticks: u64) -> SimTime {
    SimTime::from_ticks(ticks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Draining any schedule yields (time, seq) order: sorted by time,
    /// FIFO among events that share a timestamp.
    #[test]
    fn drain_order_is_time_then_fifo(times in proptest::collection::vec(0u64..50, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &ticks) in times.iter().enumerate() {
            q.schedule(t(ticks), i);
        }
        let drained: Vec<(SimTime, usize)> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(drained.len(), times.len());
        for w in drained.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated: {:?}", w);
            if w[0].0 == w[1].0 {
                // Payloads are insertion indices: FIFO within a tick.
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {:?}", w);
            }
        }
    }

    /// Two queues fed the same schedule drain identically even when pops
    /// interleave the scheduling — determinism does not depend on batch
    /// loading.
    #[test]
    fn interleaved_pops_do_not_perturb_order(
        times in proptest::collection::vec(0u64..20, 1..100),
        pop_every in 1usize..5,
    ) {
        let mut batch = EventQueue::new();
        let mut interleaved = EventQueue::new();
        let mut early = Vec::new();
        for (i, &ticks) in times.iter().enumerate() {
            batch.schedule(t(ticks), i);
            interleaved.schedule(t(ticks), i);
            // Only drain events at or before the scheduling frontier:
            // those can no longer be preempted by a later schedule (the
            // engine's invariant — you cannot schedule into the past).
            if i % pop_every == 0 {
                while let Some(due) = interleaved.pop_due(t(ticks)) {
                    early.push(due);
                }
            }
        }
        let mut rest: Vec<_> = std::iter::from_fn(|| interleaved.pop()).collect();
        let mut got = early;
        got.append(&mut rest);
        // The interleaved drain saw every event exactly once; prefix
        // pops can reorder across *later* timestamps but never within
        // the already-due frontier, so sorting by (time, payload seq)
        // must reproduce the batch drain exactly.
        got.sort_by_key(|&(time, i)| (time, i));
        let all: Vec<_> = std::iter::from_fn(|| batch.pop()).collect();
        prop_assert_eq!(got, all);
    }

    /// A wakeup cancelled before its timestamp pops stale: `fires` is
    /// false no matter how many other arms/cancels interleave on other
    /// slots.
    #[test]
    fn cancelled_wakeup_never_fires(
        ops in proptest::collection::vec((0u64..30, any::<bool>()), 1..60),
    ) {
        let mut wakeups = WakeupSet::new();
        let mut q = EventQueue::new();
        let mut cancelled = Vec::new();
        for &(ticks, cancel) in &ops {
            let slot = wakeups.alloc();
            let token = wakeups.arm(slot);
            q.schedule(t(ticks), token);
            if cancel {
                wakeups.cancel(slot);
                cancelled.push(token);
            }
        }
        let mut fired = 0usize;
        while let Some((_, token)) = q.pop() {
            if wakeups.fires(token) {
                fired += 1;
                prop_assert!(!cancelled.contains(&token));
            } else {
                prop_assert!(cancelled.contains(&token));
            }
        }
        prop_assert_eq!(fired, ops.len() - cancelled.len());
    }
}

/// The engine's timeout lifecycle in miniature: arm a timeout, complete
/// the request first (cancel), re-arm for the next attempt. The stale
/// token still pops — heap entries are not deleted — but must not fire,
/// while the re-armed one must.
#[test]
fn rearm_after_cancel_distinguishes_generations() {
    let mut wakeups = WakeupSet::new();
    let mut q = EventQueue::new();
    let slot = wakeups.alloc();

    let first = wakeups.arm(slot);
    q.schedule(t(100), first);
    wakeups.cancel(slot); // attempt 1 completed at t < 100

    let second = wakeups.arm(slot);
    q.schedule(t(100), second);

    let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
    assert_eq!(popped.len(), 2, "cancellation must not delete heap entries");
    assert!(!wakeups.fires(first), "cancelled timeout fired");
    assert!(wakeups.fires(second), "re-armed timeout must stay live");
    assert_ne!(first, second, "generations must distinguish the armings");
}

/// Same-tick completion and timeout: the completion is scheduled first,
/// pops first (FIFO), and cancels the timeout that shares its timestamp.
#[test]
fn same_tick_completion_beats_its_own_timeout() {
    #[derive(Debug, PartialEq)]
    enum Ev {
        Complete(u32),
        Timeout(simnet::Wakeup),
    }
    let mut wakeups = WakeupSet::new();
    let mut q = EventQueue::new();
    let slot = wakeups.alloc();
    q.schedule(t(8), Ev::Complete(slot));
    q.schedule(t(8), Ev::Timeout(wakeups.arm(slot)));

    let mut timed_out = false;
    while let Some((_, ev)) = q.pop() {
        match ev {
            Ev::Complete(s) => wakeups.cancel(s),
            Ev::Timeout(token) => timed_out |= wakeups.fires(token),
        }
    }
    assert!(!timed_out, "completion at the same tick must win the race");
}
