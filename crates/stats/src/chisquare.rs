use core::fmt;

use crate::gamma::chi_square_sf;

/// Error constructing a [`ChiSquare`] test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChiSquareError {
    /// Fewer than two categories — no test is possible.
    TooFewCategories,
    /// Observed and expected slices have different lengths.
    LengthMismatch {
        /// Number of observed categories supplied.
        observed: usize,
        /// Number of expected categories supplied.
        expected: usize,
    },
    /// An expected count was zero or negative (the statistic is undefined).
    NonPositiveExpected {
        /// Index of the offending category.
        index: usize,
    },
}

impl fmt::Display for ChiSquareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChiSquareError::TooFewCategories => {
                write!(f, "chi-square test needs at least two categories")
            }
            ChiSquareError::LengthMismatch { observed, expected } => write!(
                f,
                "observed has {observed} categories but expected has {expected}"
            ),
            ChiSquareError::NonPositiveExpected { index } => {
                write!(f, "expected count at index {index} is not positive")
            }
        }
    }
}

impl std::error::Error for ChiSquareError {}

/// Pearson chi-square goodness-of-fit test.
///
/// The workhorse of experiment **E5**: after drawing many samples from the
/// peer-selection algorithm, the per-peer selection counts are tested
/// against the uniform expectation `N/n`. Under the null hypothesis (the
/// sampler is exactly uniform, Theorem 6), the statistic
/// `Σ (Oᵢ − Eᵢ)²/Eᵢ` is asymptotically chi-square with `n − 1` degrees of
/// freedom, so the reported [`p_value`](ChiSquare::p_value) is uniform on
/// `(0, 1)` — large values are *expected* for a correct sampler, while a
/// biased sampler drives it to 0.
///
/// # Example
///
/// ```
/// use stats::ChiSquare;
///
/// // A grossly biased sampler is rejected...
/// let biased = ChiSquare::uniform(&[500u64, 100, 100, 100]).unwrap();
/// assert!(biased.p_value() < 1e-6);
/// // ...while balanced counts are not.
/// let fair = ChiSquare::uniform(&[201u64, 199, 195, 205]).unwrap();
/// assert!(fair.p_value() > 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    statistic: f64,
    dof: u64,
    p_value: f64,
}

impl ChiSquare {
    /// Tests observed counts against a uniform expectation.
    ///
    /// # Errors
    ///
    /// Returns [`ChiSquareError::TooFewCategories`] for fewer than two
    /// categories, or [`ChiSquareError::NonPositiveExpected`] if the total
    /// observed count is zero.
    pub fn uniform(observed: &[u64]) -> Result<ChiSquare, ChiSquareError> {
        if observed.len() < 2 {
            return Err(ChiSquareError::TooFewCategories);
        }
        let total: u128 = observed.iter().map(|&c| c as u128).sum();
        if total == 0 {
            return Err(ChiSquareError::NonPositiveExpected { index: 0 });
        }
        let expected = total as f64 / observed.len() as f64;
        let statistic = observed
            .iter()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();
        Ok(ChiSquare::from_statistic(
            statistic,
            observed.len() as u64 - 1,
        ))
    }

    /// Tests observed counts against explicit expected counts.
    ///
    /// `expected` need not be normalized: it is scaled so its sum matches
    /// the observed total (the usual convention for GOF tests against a
    /// model distribution).
    ///
    /// # Errors
    ///
    /// Returns an error when lengths differ, there are fewer than two
    /// categories, or any expected weight is non-positive.
    pub fn against(observed: &[u64], expected: &[f64]) -> Result<ChiSquare, ChiSquareError> {
        if observed.len() != expected.len() {
            return Err(ChiSquareError::LengthMismatch {
                observed: observed.len(),
                expected: expected.len(),
            });
        }
        if observed.len() < 2 {
            return Err(ChiSquareError::TooFewCategories);
        }
        if let Some(index) = expected.iter().position(|&e| e <= 0.0 || e.is_nan()) {
            return Err(ChiSquareError::NonPositiveExpected { index });
        }
        let obs_total: f64 = observed.iter().map(|&c| c as f64).sum();
        let exp_total: f64 = expected.iter().sum();
        let scale = obs_total / exp_total;
        let statistic = observed
            .iter()
            .zip(expected)
            .map(|(&o, &e)| {
                let e = e * scale;
                let d = o as f64 - e;
                d * d / e
            })
            .sum();
        Ok(ChiSquare::from_statistic(
            statistic,
            observed.len() as u64 - 1,
        ))
    }

    /// Wraps a precomputed statistic with the given degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `dof == 0` or the statistic is negative/not finite.
    pub fn from_statistic(statistic: f64, dof: u64) -> ChiSquare {
        assert!(
            statistic.is_finite() && statistic >= 0.0,
            "invalid chi-square statistic {statistic}"
        );
        ChiSquare {
            statistic,
            dof,
            p_value: chi_square_sf(statistic, dof),
        }
    }

    /// The Pearson statistic `Σ (Oᵢ − Eᵢ)²/Eᵢ`.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Degrees of freedom (`categories − 1`).
    pub fn dof(&self) -> u64 {
        self.dof
    }

    /// Right-tail p-value: probability of a statistic at least this large
    /// under the null hypothesis.
    pub fn p_value(&self) -> f64 {
        self.p_value
    }

    /// Whether the null hypothesis is rejected at significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

impl fmt::Display for ChiSquare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chi2({}) = {:.3}, p = {:.4}",
            self.dof, self.statistic, self.p_value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_uniform_counts_have_zero_statistic() {
        let t = ChiSquare::uniform(&[100, 100, 100, 100]).unwrap();
        assert_eq!(t.statistic(), 0.0);
        assert_eq!(t.dof(), 3);
        assert_eq!(t.p_value(), 1.0);
        assert!(!t.rejects_at(0.05));
    }

    #[test]
    fn known_statistic_value() {
        // Observed [10, 20], expected [15, 15]: χ² = 25/15 + 25/15 = 10/3.
        let t = ChiSquare::uniform(&[10, 20]).unwrap();
        assert!((t.statistic() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.dof(), 1);
    }

    #[test]
    fn strong_bias_rejected() {
        let t = ChiSquare::uniform(&[1000, 10, 10, 10]).unwrap();
        assert!(t.p_value() < 1e-10);
        assert!(t.rejects_at(0.001));
    }

    #[test]
    fn against_matches_uniform_when_flat() {
        let obs = [120u64, 95, 110, 80];
        let a = ChiSquare::uniform(&obs).unwrap();
        let b = ChiSquare::against(&obs, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!((a.statistic() - b.statistic()).abs() < 1e-12);
    }

    #[test]
    fn against_unnormalized_expected_is_scaled() {
        // Model 2:1, observed exactly 2:1 → statistic 0.
        let t = ChiSquare::against(&[200, 100], &[2.0, 1.0]).unwrap();
        assert!(t.statistic().abs() < 1e-12);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            ChiSquare::uniform(&[5]).unwrap_err(),
            ChiSquareError::TooFewCategories
        );
        assert_eq!(
            ChiSquare::against(&[1, 2], &[1.0]).unwrap_err(),
            ChiSquareError::LengthMismatch {
                observed: 2,
                expected: 1
            }
        );
        assert_eq!(
            ChiSquare::against(&[1, 2], &[1.0, 0.0]).unwrap_err(),
            ChiSquareError::NonPositiveExpected { index: 1 }
        );
        assert!(ChiSquare::uniform(&[0, 0]).is_err());
        // Errors have readable Display forms.
        assert!(ChiSquareError::TooFewCategories.to_string().contains("two"));
    }

    #[test]
    fn display_is_informative() {
        let t = ChiSquare::uniform(&[10, 20]).unwrap();
        let s = t.to_string();
        assert!(s.contains("chi2(1)"));
        assert!(s.contains("p ="));
    }
}
