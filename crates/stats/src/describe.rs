use core::fmt;

/// Streaming mean/variance accumulator (Welford's online algorithm).
///
/// Numerically stable single-pass computation of mean and variance; used by
/// the experiment harness to aggregate per-call message counts and latencies
/// without storing every observation.
///
/// # Example
///
/// ```
/// use stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Welford {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite — a NaN would silently poison every
    /// downstream statistic.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "Welford observation must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`; 0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Welford {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

impl fmt::Display for Welford {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Batch descriptive summary with exact percentiles.
///
/// Stores (a sorted copy of) the sample, so prefer [`Welford`] when only
/// moments are needed. Percentiles use the nearest-rank method, which is
/// exact and monotone and therefore safe for assertions in tests.
///
/// # Example
///
/// ```
/// use stats::Summary;
///
/// let s = Summary::from_samples((1..=100).map(f64::from)).unwrap();
/// assert_eq!(s.median(), 50.0);
/// assert_eq!(s.percentile(99.0), 99.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    moments: Welford,
}

impl Summary {
    /// Builds a summary from samples.
    ///
    /// Returns `None` for an empty input.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Option<Summary> {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        if sorted.is_empty() {
            return None;
        }
        let moments: Welford = sorted.iter().copied().collect();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Some(Summary { sorted, moments })
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.moments.std_dev()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Nearest-rank percentile, `p ∈ [0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile {p} outside [0, 100]"
        );
        if p == 0.0 {
            return self.min();
        }
        let rank = (p / 100.0 * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// The 50th percentile.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Borrow the sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} p50={:.4} p99={:.4} max={:.4}",
            self.count(),
            self.mean(),
            self.std_dev(),
            self.median(),
            self.percentile(99.0),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_textbook_example() {
        let w: Welford = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(w.count(), 8);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.population_variance(), 4.0);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_benign() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let sequential: Welford = xs.iter().copied().collect();
        let mut left: Welford = xs[..37].iter().copied().collect();
        let right: Welford = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean() - sequential.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - sequential.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        let b: Welford = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 1.5);
        let mut c: Welford = [3.0].into_iter().collect();
        c.merge(&Welford::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn welford_rejects_nan() {
        Welford::new().push(f64::NAN);
    }

    #[test]
    fn summary_percentiles_nearest_rank() {
        let s = Summary::from_samples((1..=10).map(f64::from)).unwrap();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(10.0), 1.0);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(91.0), 10.0);
        assert_eq!(s.percentile(100.0), 10.0);
        assert_eq!(s.median(), 5.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::from_samples(std::iter::empty()).is_none());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples([42.0]).unwrap();
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn summary_percentile_range_checked() {
        let s = Summary::from_samples([1.0]).unwrap();
        let _ = s.percentile(101.0);
    }

    #[test]
    fn displays_are_nonempty() {
        let w: Welford = [1.0, 2.0].into_iter().collect();
        assert!(w.to_string().contains("mean"));
        let s = Summary::from_samples([1.0, 2.0]).unwrap();
        assert!(s.to_string().contains("p50"));
    }
}
