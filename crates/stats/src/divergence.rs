//! Distances between discrete probability distributions.
//!
//! The paper's headline guarantee is *exact* uniformity (Theorem 6), while
//! the comparators (naive `h(s)`, random walks) are only approximately
//! uniform. These functions quantify the gap:
//!
//! * [`total_variation`] — `½ Σ |pᵢ − qᵢ|`, the probability mass that would
//!   have to move; the metric used by Gkantsidis et al. for walk mixing.
//! * [`kl_divergence`] — `Σ pᵢ ln(pᵢ/qᵢ)`.
//! * [`max_min_ratio`] — the paper's §1 bias measure: the most-likely peer
//!   of the naive heuristic is chosen `Θ(n log n)` times more often than the
//!   least-likely one.
//! * [`normalize_counts`] — empirical distribution from selection counts.

/// Converts raw selection counts into an empirical probability distribution.
///
/// # Panics
///
/// Panics if the total count is zero.
pub fn normalize_counts(counts: &[u64]) -> Vec<f64> {
    let total: u128 = counts.iter().map(|&c| c as u128).sum();
    assert!(total > 0, "cannot normalize all-zero counts");
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Total-variation distance `½ Σ |pᵢ − qᵢ|` between two distributions.
///
/// Ranges over `[0, 1]`; 0 iff identical, 1 iff disjoint support.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Total-variation distance of an empirical count vector from uniform.
///
/// Convenience wrapper for the common E5/E7 measurement.
///
/// # Panics
///
/// Panics if `counts` is empty or all zero.
pub fn tv_from_uniform(counts: &[u64]) -> f64 {
    assert!(!counts.is_empty(), "empty count vector");
    let p = normalize_counts(counts);
    let u = 1.0 / counts.len() as f64;
    0.5 * p.iter().map(|&x| (x - u).abs()).sum::<f64>()
}

/// Kullback–Leibler divergence `D(p ‖ q) = Σ pᵢ ln(pᵢ/qᵢ)` in nats.
///
/// Terms with `pᵢ = 0` contribute 0. Returns `+∞` if `p` puts mass where
/// `q` has none (absolute-continuity violation).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    let mut total = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return f64::INFINITY;
        }
        total += pi * (pi / qi).ln();
    }
    total.max(0.0)
}

/// Ratio of the largest to the smallest empirical probability.
///
/// This is the paper's §1 bias measure. Returns `+∞` when some category was
/// never selected (its empirical probability is zero).
///
/// # Panics
///
/// Panics if `counts` is empty or all zero.
pub fn max_min_ratio(counts: &[u64]) -> f64 {
    assert!(!counts.is_empty(), "empty count vector");
    let max = *counts.iter().max().expect("non-empty");
    let min = *counts.iter().min().expect("non-empty");
    assert!(max > 0, "all-zero counts");
    if min == 0 {
        f64::INFINITY
    } else {
        max as f64 / min as f64
    }
}

/// L∞ distance `max |pᵢ − qᵢ|` between two distributions.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l_infinity(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support");
    p.iter()
        .zip(q)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_counts_sums_to_one() {
        let p = normalize_counts(&[1, 2, 3, 4]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[3], 0.4);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn normalize_rejects_zero_total() {
        let _ = normalize_counts(&[0, 0]);
    }

    #[test]
    fn tv_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn tv_disjoint_is_one() {
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
    }

    #[test]
    fn tv_known_value() {
        // ½(|0.5−0.25| + |0.5−0.75|) = 0.25.
        assert!((total_variation(&[0.5, 0.5], &[0.25, 0.75]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tv_from_uniform_matches_manual() {
        let counts = [30u64, 10, 10, 10];
        // p = [.5, 1/6, 1/6, 1/6], u = .25 → ½(.25 + 3·(1/12)) = 0.25.
        assert!((tv_from_uniform(&counts) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kl_properties() {
        let p = [0.3, 0.7];
        let q = [0.5, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        let d = kl_divergence(&p, &q);
        assert!(d > 0.0);
        // Manual: .3 ln(.6) + .7 ln(1.4)
        let manual = 0.3 * (0.6f64).ln() + 0.7 * (1.4f64).ln();
        assert!((d - manual).abs() < 1e-12);
    }

    #[test]
    fn kl_zero_p_mass_skipped_zero_q_mass_infinite() {
        assert_eq!(kl_divergence(&[0.0, 1.0], &[0.5, 0.5]), (2.0f64).ln());
        assert_eq!(kl_divergence(&[0.5, 0.5], &[0.0, 1.0]), f64::INFINITY);
    }

    #[test]
    fn max_min_ratio_basic() {
        assert_eq!(max_min_ratio(&[10, 5, 20]), 4.0);
        assert_eq!(max_min_ratio(&[7, 7]), 1.0);
        assert_eq!(max_min_ratio(&[3, 0]), f64::INFINITY);
    }

    #[test]
    fn l_infinity_basic() {
        assert!((l_infinity(&[0.5, 0.5], &[0.2, 0.8]) - 0.3).abs() < 1e-12);
        assert_eq!(l_infinity(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal support")]
    fn mismatched_lengths_panic() {
        let _ = total_variation(&[1.0], &[0.5, 0.5]);
    }
}
