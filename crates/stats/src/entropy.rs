//! Entropy measures and the likelihood-ratio (G) test.
//!
//! A second, independent statistical lens on uniformity: Shannon entropy
//! is maximized exactly by the uniform distribution, and the G-test is the
//! likelihood-ratio counterpart of Pearson's chi-square (asymptotically
//! equivalent, differently sensitive at finite samples). The experiment
//! harness cross-checks its chi-square verdicts against these.

use crate::gamma::chi_square_sf;

/// Shannon entropy `−Σ pᵢ ln pᵢ` in nats of a probability vector.
///
/// Zero-probability entries contribute 0.
///
/// # Panics
///
/// Panics if the vector is empty, has negative entries, or does not sum
/// to 1 within `1e-9`.
///
/// # Example
///
/// ```
/// use stats::entropy::shannon;
///
/// let uniform = [0.25; 4];
/// assert!((shannon(&uniform) - 4f64.ln()).abs() < 1e-12);
/// assert_eq!(shannon(&[1.0, 0.0]), 0.0);
/// ```
pub fn shannon(p: &[f64]) -> f64 {
    assert!(!p.is_empty(), "entropy of an empty distribution");
    let total: f64 = p.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "probabilities sum to {total}, not 1"
    );
    let mut h = 0.0;
    for &pi in p {
        assert!(pi >= 0.0, "negative probability {pi}");
        if pi > 0.0 {
            h -= pi * pi.ln();
        }
    }
    h.max(0.0)
}

/// Entropy of an empirical count vector, normalized to `[0, 1]` by the
/// maximum `ln n` — 1.0 iff perfectly uniform.
///
/// # Panics
///
/// Panics if `counts` is empty or all zero, or has a single category
/// (normalization is undefined).
pub fn normalized_from_counts(counts: &[u64]) -> f64 {
    assert!(counts.len() >= 2, "need at least two categories");
    let total: u128 = counts.iter().map(|&c| c as u128).sum();
    assert!(total > 0, "all-zero counts");
    let p: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
    shannon(&p) / (counts.len() as f64).ln()
}

/// The likelihood-ratio goodness-of-fit test (`G-test`) against a uniform
/// expectation: `G = 2 Σ Oᵢ ln(Oᵢ/Eᵢ)`, asymptotically `χ²(n−1)`.
///
/// # Example
///
/// ```
/// use stats::entropy::GTest;
///
/// let biased = GTest::uniform(&[500u64, 100, 100, 100]).unwrap();
/// assert!(biased.p_value() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GTest {
    statistic: f64,
    dof: u64,
    p_value: f64,
}

impl GTest {
    /// Runs the test against the uniform expectation.
    ///
    /// Returns `None` for fewer than two categories or a zero total.
    pub fn uniform(observed: &[u64]) -> Option<GTest> {
        if observed.len() < 2 {
            return None;
        }
        let total: u128 = observed.iter().map(|&c| c as u128).sum();
        if total == 0 {
            return None;
        }
        let expected = total as f64 / observed.len() as f64;
        let statistic = 2.0
            * observed
                .iter()
                .filter(|&&o| o > 0)
                .map(|&o| o as f64 * (o as f64 / expected).ln())
                .sum::<f64>();
        let statistic = statistic.max(0.0);
        let dof = observed.len() as u64 - 1;
        Some(GTest {
            statistic,
            dof,
            p_value: chi_square_sf(statistic, dof),
        })
    }

    /// The G statistic.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> u64 {
        self.dof
    }

    /// Right-tail p-value under the `χ²(dof)` asymptotics.
    pub fn p_value(&self) -> f64 {
        self.p_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_known_values() {
        assert_eq!(shannon(&[1.0]), 0.0);
        assert!((shannon(&[0.5, 0.5]) - 2f64.ln()).abs() < 1e-12);
        assert!((shannon(&[0.25; 4]) - 4f64.ln()).abs() < 1e-12);
        // Entropy of (0.9, 0.1).
        let h = -(0.9f64 * 0.9f64.ln() + 0.1 * 0.1f64.ln());
        assert!((shannon(&[0.9, 0.1]) - h).abs() < 1e-12);
    }

    #[test]
    fn uniform_maximizes_entropy() {
        let u = shannon(&[0.25; 4]);
        assert!(shannon(&[0.4, 0.3, 0.2, 0.1]) < u);
        assert!(shannon(&[0.7, 0.1, 0.1, 0.1]) < u);
    }

    #[test]
    fn normalized_counts_behave() {
        assert!((normalized_from_counts(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!(normalized_from_counts(&[100, 1, 1, 1]) < 0.3);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn non_normalized_panics() {
        let _ = shannon(&[0.5, 0.6]);
    }

    #[test]
    #[should_panic(expected = "two categories")]
    fn single_category_normalized_panics() {
        let _ = normalized_from_counts(&[5]);
    }

    #[test]
    fn g_test_agrees_with_chi_square_in_regime() {
        // Mild deviation, large counts: G and χ² should nearly coincide.
        let counts = [1020u64, 980, 1010, 990];
        let g = GTest::uniform(&counts).unwrap();
        let chi = crate::ChiSquare::uniform(&counts).unwrap();
        assert!((g.statistic() - chi.statistic()).abs() < 0.05);
        assert!((g.p_value() - chi.p_value()).abs() < 0.01);
        assert_eq!(g.dof(), 3);
    }

    #[test]
    fn g_test_rejects_bias() {
        let g = GTest::uniform(&[1000u64, 10, 10, 10]).unwrap();
        assert!(g.p_value() < 1e-10);
    }

    #[test]
    fn g_test_accepts_uniform() {
        let g = GTest::uniform(&[100u64, 100, 100, 100]).unwrap();
        assert_eq!(g.statistic(), 0.0);
        assert_eq!(g.p_value(), 1.0);
    }

    #[test]
    fn g_test_degenerate_inputs() {
        assert!(GTest::uniform(&[5]).is_none());
        assert!(GTest::uniform(&[0, 0]).is_none());
        // Empty categories are fine (contribute 0).
        assert!(GTest::uniform(&[10, 0]).is_some());
    }
}
