//! Least-squares curve fitting for scaling-law verification.
//!
//! The paper's asymptotic claims become slope checks after a transform:
//!
//! * Theorem 8 (`min arc = Θ(1/n²)`) — a log–log fit of min-arc vs `n`
//!   should have slope ≈ −2 ([`log_log_fit`]).
//! * Theorem 7 (`messages = O(log n)`) — a log-linear fit of mean messages
//!   vs `n` should be an excellent linear fit ([`log_linear_fit`]), while a
//!   fit against `n` itself should be poor.

use core::fmt;

/// Result of an ordinary least-squares line fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R² ∈ [0, 1]` (1 = perfect line).
    pub r_squared: f64,
}

impl LineFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

impl fmt::Display for LineFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.4}x + {:.4} (R^2 = {:.4})",
            self.slope, self.intercept, self.r_squared
        )
    }
}

/// Ordinary least-squares fit of `y` on `x`.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than two points, or
/// all `x` values coincide (the slope is undefined).
pub fn linear_fit(x: &[f64], y: &[f64]) -> LineFit {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two points to fit a line");
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "all x values identical; slope undefined");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // constant y is fit perfectly by a horizontal line
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `ln y = slope · ln x + c`, i.e. a power law `y ∝ x^slope`.
///
/// # Panics
///
/// Panics under the same conditions as [`linear_fit`], or if any value is
/// non-positive (logarithm undefined).
pub fn log_log_fit(x: &[f64], y: &[f64]) -> LineFit {
    let lx: Vec<f64> = x.iter().map(|&v| positive_ln(v, "x")).collect();
    let ly: Vec<f64> = y.iter().map(|&v| positive_ln(v, "y")).collect();
    linear_fit(&lx, &ly)
}

/// Fits `y = slope · ln x + c`, i.e. logarithmic growth `y ∝ log x`.
///
/// # Panics
///
/// Panics under the same conditions as [`linear_fit`], or if any `x` is
/// non-positive.
pub fn log_linear_fit(x: &[f64], y: &[f64]) -> LineFit {
    let lx: Vec<f64> = x.iter().map(|&v| positive_ln(v, "x")).collect();
    linear_fit(&lx, y)
}

fn positive_ln(v: f64, axis: &str) -> f64 {
    assert!(v > 0.0, "log fit requires positive {axis} values, got {v}");
    v.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v - 1.0).collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_reasonable() {
        let x: Vec<f64> = (1..50).map(f64::from).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * v + 5.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn power_law_slope_recovered() {
        // y = 7 / n² → log-log slope −2.
        let x: Vec<f64> = (1..=10).map(|k| (1 << k) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 7.0 / (v * v)).collect();
        let fit = log_log_fit(&x, &y);
        assert!((fit.slope + 2.0).abs() < 1e-10);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn logarithmic_growth_recovered() {
        // y = 3 ln n + 2.
        let x: Vec<f64> = (1..=12).map(|k| (1u64 << k) as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v.ln() + 2.0).collect();
        let fit = log_linear_fit(&x, &y);
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn constant_y_has_perfect_r2() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = linear_fit(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn one_point_panics() {
        let _ = linear_fit(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_line_panics() {
        let _ = linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn log_fit_rejects_nonpositive() {
        let _ = log_log_fit(&[0.0, 1.0], &[1.0, 2.0]);
    }

    #[test]
    fn display_mentions_r2() {
        let fit = linear_fit(&[1.0, 2.0], &[1.0, 2.0]);
        assert!(fit.to_string().contains("R^2"));
    }
}
