//! Gamma-family special functions.
//!
//! The chi-square survival function needed for goodness-of-fit p-values is
//! `Q(k/2, x/2)` where `Q` is the regularized **upper** incomplete gamma
//! function. This module implements the textbook pair of algorithms
//! (series expansion for small `x`, Lentz continued fraction for large `x`;
//! see *Numerical Recipes* §6.2) on top of a Lanczos log-gamma.
//!
//! Accuracy is ~1e-12 relative over the ranges used by the test suite, which
//! is far tighter than any statistical decision made with it.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with `g = 7`, 9 coefficients (double
/// precision). Relative error is below `1e-13` for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0` or `x` is not finite.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`; `P` is the CDF of the Gamma(a, 1)
/// distribution.
///
/// # Panics
///
/// Panics if `a <= 0`, `x < 0`, or either argument is not finite.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    check_incomplete_args(a, x);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0`, `x < 0`, or either argument is not finite.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    check_incomplete_args(a, x);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_continued_fraction(a, x)
    }
}

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: `Pr[X ≥ x] = Q(dof/2, x/2)`.
///
/// This is the p-value of a chi-square statistic.
///
/// # Panics
///
/// Panics if `dof == 0`, `x < 0`, or `x` is not finite.
pub fn chi_square_sf(x: f64, dof: u64) -> f64 {
    assert!(dof > 0, "chi-square needs at least 1 degree of freedom");
    reg_upper_gamma(dof as f64 / 2.0, x / 2.0)
}

fn check_incomplete_args(a: f64, x: f64) {
    assert!(
        a.is_finite() && a > 0.0,
        "incomplete gamma requires a > 0, got {a}"
    );
    assert!(
        x.is_finite() && x >= 0.0,
        "incomplete gamma requires x >= 0, got {x}"
    );
}

/// Series representation of `P(a, x)`, converging fast for `x < a + 1`.
fn lower_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut denom = a;
    for _ in 0..MAX_ITER {
        denom += 1.0;
        term *= x / denom;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
}

/// Modified Lentz continued fraction for `Q(a, x)`, for `x ≥ a + 1`.
fn upper_continued_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (h.ln() + a * x.ln() - x - ln_gamma(a))
        .exp()
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(k) = (k−1)!
        let mut fact = 1.0f64;
        for k in 1..15u32 {
            assert!(close(ln_gamma(k as f64), fact.ln(), 1e-12), "ln_gamma({k})");
            fact *= k as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(close(ln_gamma(0.5), sqrt_pi.ln(), 1e-12));
        assert!(close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_eq!(reg_lower_gamma(2.5, 0.0), 0.0);
        assert_eq!(reg_upper_gamma(2.5, 0.0), 1.0);
        assert!(reg_lower_gamma(2.5, 1e6) > 1.0 - 1e-12);
        assert!(reg_upper_gamma(2.5, 1e6) < 1e-12);
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 0.9, 1.0, 2.0, 5.0, 20.0, 80.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert!(close(p + q, 1.0, 1e-12), "a={a} x={x}: p+q={}", p + q);
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // For a = 1, P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!(close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn chi_square_sf_known_values() {
        // Classic table: χ²(1 dof) at 3.841 ≈ 0.05; χ²(10) at 18.307 ≈ 0.05.
        assert!((chi_square_sf(3.841, 1) - 0.05).abs() < 5e-4);
        assert!((chi_square_sf(18.307, 10) - 0.05).abs() < 5e-4);
        // χ²(2) is exponential(1/2): SF(x) = e^{−x/2}.
        for &x in &[0.5, 2.0, 7.0] {
            assert!(close(chi_square_sf(x, 2), (-x / 2.0).exp(), 1e-12));
        }
    }

    #[test]
    fn chi_square_sf_monotone_in_x() {
        let mut prev = 1.0;
        for i in 0..200 {
            let x = i as f64 * 0.5;
            let sf = chi_square_sf(x, 7);
            assert!(sf <= prev + 1e-14, "SF must be non-increasing");
            prev = sf;
        }
    }

    #[test]
    fn gamma_cdf_median_sanity() {
        // Median of Gamma(a, 1) is ≈ a − 1/3 for large a; P at the median ≈ 0.5.
        let a = 30.0;
        let p = reg_lower_gamma(a, a - 1.0 / 3.0);
        assert!((p - 0.5).abs() < 0.01, "P(a, a - 1/3) = {p}");
    }
}
