use core::fmt;

/// Selection-count histogram over a fixed set of categories.
///
/// The experiment harness draws millions of peer samples; this type tallies
/// them per peer and hands the counts to [`ChiSquare`](crate::ChiSquare) and
/// [`divergence`](crate::divergence). Categories are dense indices
/// `0..categories` (peer ranks).
///
/// # Example
///
/// ```
/// use stats::CategoricalHistogram;
///
/// let mut h = CategoricalHistogram::new(3);
/// for c in [0usize, 1, 1, 2, 2, 2] {
///     h.record(c);
/// }
/// assert_eq!(h.counts(), &[1, 2, 3]);
/// assert_eq!(h.total(), 6);
/// assert_eq!(h.mode(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl CategoricalHistogram {
    /// Creates a histogram with the given number of categories, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `categories == 0`.
    pub fn new(categories: usize) -> CategoricalHistogram {
        assert!(categories > 0, "histogram needs at least one category");
        CategoricalHistogram {
            counts: vec![0; categories],
            total: 0,
        }
    }

    /// Records one observation of `category`.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn record(&mut self, category: usize) {
        self.counts[category] += 1;
        self.total += 1;
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.counts.len()
    }

    /// Per-category counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one category.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn count(&self, category: usize) -> u64 {
        self.counts[category]
    }

    /// Empirical probability of one category (0 when nothing recorded).
    pub fn frequency(&self, category: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[category] as f64 / self.total as f64
        }
    }

    /// The most frequent category (smallest index on ties); `None` when
    /// nothing has been recorded.
    pub fn mode(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))?;
        Some(idx)
    }

    /// Number of categories never observed.
    pub fn empty_categories(&self) -> usize {
        self.counts.iter().filter(|&&c| c == 0).count()
    }

    /// Merges another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if category counts differ.
    pub fn merge(&mut self, other: &CategoricalHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histograms must have equal category counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl fmt::Display for CategoricalHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram({} categories, {} observations)",
            self.counts.len(),
            self.total
        )
    }
}

/// Sub-bucket resolution of [`LogHistogram`]: 2^4 = 16 linear sub-buckets
/// per power-of-two octave, bounding relative quantile error at 1/16.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// One tail exemplar: a concrete operation id pinned to the histogram
/// bucket its value landed in, so a percentile figure can be traced back
/// to a replayable operation (see `telemetry`'s flight recorder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Bucket index the exemplar's value landed in
    /// (see [`LogHistogram::bucket_index`]).
    pub bucket: usize,
    /// The recorded value.
    pub value: u64,
    /// Caller-supplied operation id (e.g. a lookup-trace ordinal).
    pub trace_id: u64,
}

/// Log-bucketed histogram over `u64` values with bounded relative error.
///
/// Values below 16 land in exact unit buckets; above that, each power-of-two
/// octave is split into 16 linear sub-buckets, so any reported quantile `q`
/// satisfies `exact ≤ q ≤ exact · (1 + 1/16)`. The fixed bucket count
/// ([`LogHistogram::BUCKETS`]) makes the type mergeable across workers and
/// cheap to snapshot from atomic counters (see `telemetry::Recorder`).
///
/// Percentiles use the same nearest-rank convention as [`crate::Summary`],
/// returning the *upper edge* of the selected bucket
/// clamped to the exact observed maximum — quantiles never under-report,
/// which keeps them safe for tail-bound assertions.
///
/// A histogram can optionally carry [`Exemplar`]s — at most one per
/// bucket, keep-first — linking tail buckets to concrete operation ids;
/// see [`LogHistogram::record_with_exemplar`].
///
/// # Example
///
/// ```
/// use stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// let p99 = h.percentile(99.0);
/// assert!((990..=1052).contains(&p99)); // within 1/16 of exact 990
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    exemplars: Vec<Exemplar>,
}

impl LogHistogram {
    /// Number of buckets: 16 exact unit buckets plus 16 sub-buckets for
    /// each of the 60 remaining octaves of the `u64` range.
    pub const BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + SUB as usize;

    /// Maximum exemplars one histogram retains (one slot per distinct
    /// bucket, keep-first, so the cap only binds on very spread-out
    /// distributions).
    pub const MAX_EXEMPLARS: usize = 32;

    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; Self::BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
            exemplars: Vec::new(),
        }
    }

    /// Maps a value to its bucket index. Total order is preserved:
    /// `a <= b` implies `bucket_index(a) <= bucket_index(b)`.
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB {
            value as usize
        } else {
            let top = 63 - value.leading_zeros(); // >= SUB_BITS
            let sub = ((value >> (top - SUB_BITS)) & (SUB - 1)) as usize;
            (((top - SUB_BITS + 1) as usize) << SUB_BITS) + sub
        }
    }

    /// Upper edge (inclusive) of a bucket — the value reported for any
    /// sample that landed in it.
    pub fn bucket_upper(index: usize) -> u64 {
        assert!(index < Self::BUCKETS, "bucket index {index} out of range");
        if index < SUB as usize {
            index as u64
        } else {
            let octave = (index >> SUB_BITS) as u32 + SUB_BITS - 1;
            let sub = (index as u64) & (SUB - 1);
            let shift = octave - SUB_BITS;
            let upper = ((SUB + sub + 1) as u128) << shift;
            (upper - 1).min(u64::MAX as u128) as u64
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(value)] += n;
        self.total += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Rebuilds a histogram from raw bucket counts (e.g. snapshotted from
    /// atomic storage) plus the exactly-tracked min/max observations.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != LogHistogram::BUCKETS`.
    pub fn from_bucket_counts(counts: &[u64], min: u64, max: u64) -> LogHistogram {
        assert_eq!(
            counts.len(),
            Self::BUCKETS,
            "bucket snapshot has wrong length"
        );
        let total = counts.iter().sum();
        LogHistogram {
            counts: counts.to_vec(),
            total,
            min: if total == 0 { u64::MAX } else { min },
            max: if total == 0 { 0 } else { max },
            exemplars: Vec::new(),
        }
    }

    /// Records one observation and offers `trace_id` as the bucket's
    /// exemplar. The first observation to land in a bucket wins its slot
    /// (deterministic keep-first); later offers for the same bucket are
    /// ignored, as is everything past [`LogHistogram::MAX_EXEMPLARS`]
    /// distinct buckets.
    pub fn record_with_exemplar(&mut self, value: u64, trace_id: u64) {
        self.record(value);
        self.offer_exemplar(value, trace_id);
    }

    /// Offers an exemplar without recording a new observation (used when
    /// the count was already tallied elsewhere, e.g. in atomic storage).
    pub fn offer_exemplar(&mut self, value: u64, trace_id: u64) {
        let bucket = Self::bucket_index(value);
        match self.exemplars.binary_search_by_key(&bucket, |e| e.bucket) {
            Ok(_) => {} // keep-first: the slot is taken
            Err(pos) => {
                if self.exemplars.len() < Self::MAX_EXEMPLARS {
                    self.exemplars.insert(
                        pos,
                        Exemplar {
                            bucket,
                            value,
                            trace_id,
                        },
                    );
                }
            }
        }
    }

    /// The retained exemplars, sorted by bucket index.
    pub fn exemplars(&self) -> &[Exemplar] {
        &self.exemplars
    }

    /// Drops every exemplar (window-reset path; counts are untouched).
    pub fn clear_exemplars(&mut self) {
        self.exemplars.clear();
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank percentile, `p ∈ [0, 100]`; 0 when empty.
    ///
    /// Returns the upper edge of the bucket holding the rank-selected
    /// sample, clamped to the exact maximum, so the result is within
    /// `+1/16` relative error of the exact quantile and never below it.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile {p} outside [0, 100]"
        );
        if self.total == 0 {
            return 0;
        }
        if p == 0.0 {
            return self.min();
        }
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// The 50th percentile.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merges another histogram's counts into this one. Exemplars keep
    /// the keep-first policy: this histogram's slots win, `other`'s fill
    /// buckets still empty (in bucket order), up to the retention cap.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for e in &other.exemplars {
            self.offer_exemplar(e.value, e.trace_id);
        }
    }

    /// Raw bucket counts (length [`LogHistogram::BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loghist(n={} p50={} p90={} p99={} p999={} max={})",
            self.total,
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut h = CategoricalHistogram::new(4);
        h.record(0);
        h.record(3);
        h.record(3);
        assert_eq!(h.counts(), &[1, 0, 0, 2]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(3), 2);
        assert!((h.frequency(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.mode(), Some(3));
        assert_eq!(h.empty_categories(), 2);
        assert_eq!(h.categories(), 4);
    }

    #[test]
    fn empty_histogram() {
        let h = CategoricalHistogram::new(2);
        assert_eq!(h.total(), 0);
        assert_eq!(h.frequency(0), 0.0);
        assert_eq!(h.mode(), None);
        assert_eq!(h.empty_categories(), 2);
    }

    #[test]
    fn mode_tie_prefers_smallest_index() {
        let mut h = CategoricalHistogram::new(3);
        h.record(2);
        h.record(1);
        assert_eq!(h.mode(), Some(1));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CategoricalHistogram::new(2);
        a.record(0);
        let mut b = CategoricalHistogram::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 2]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "equal category counts")]
    fn merge_size_mismatch_panics() {
        let mut a = CategoricalHistogram::new(2);
        a.merge(&CategoricalHistogram::new(3));
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_categories_panics() {
        let _ = CategoricalHistogram::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_record_panics() {
        CategoricalHistogram::new(1).record(1);
    }

    #[test]
    fn display_mentions_sizes() {
        let h = CategoricalHistogram::new(5);
        assert!(h.to_string().contains("5 categories"));
    }

    // ---- LogHistogram ----

    use crate::Summary;

    #[test]
    fn loghist_bucket_index_is_monotone_at_boundaries() {
        // Every power-of-two edge and its neighbours must stay ordered.
        let mut edges: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for delta in [-1i128, 0, 1] {
                let v = (1i128 << shift) + delta;
                if (0..=u64::MAX as i128).contains(&v) {
                    edges.push(v as u64);
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut last = 0usize;
        for &v in &edges {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= last, "index regressed at value {v}");
            assert!(idx < LogHistogram::BUCKETS);
            assert!(LogHistogram::bucket_upper(idx) >= v);
            last = idx;
        }
        assert_eq!(
            LogHistogram::bucket_index(u64::MAX),
            LogHistogram::BUCKETS - 1
        );
        assert_eq!(
            LogHistogram::bucket_upper(LogHistogram::BUCKETS - 1),
            u64::MAX
        );
    }

    #[test]
    fn loghist_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for v in 0..SUB {
            let p = (v + 1) as f64 / SUB as f64 * 100.0;
            assert_eq!(h.percentile(p), v, "unit bucket {v} must be exact");
        }
    }

    #[test]
    fn loghist_empty_is_benign() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn loghist_single_sample_is_exact_everywhere() {
        for v in [0u64, 1, 15, 16, 17, 1000, u64::MAX] {
            let mut h = LogHistogram::new();
            h.record(v);
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
            // Max-clamping makes every percentile exact for one sample.
            for p in [0.0, 0.1, 50.0, 99.0, 99.9, 100.0] {
                assert_eq!(h.percentile(p), v, "p{p} of single sample {v}");
            }
        }
    }

    #[test]
    fn loghist_all_equal_samples() {
        let mut h = LogHistogram::new();
        h.record_n(777, 10_000);
        assert_eq!(h.count(), 10_000);
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 777);
        }
    }

    #[test]
    fn loghist_u64_max_does_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn loghist_merge_equals_sequential() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 4099;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn loghist_from_bucket_counts_roundtrips() {
        let mut h = LogHistogram::new();
        for v in [3u64, 99, 4096, 70_000] {
            h.record(v);
        }
        let rebuilt = LogHistogram::from_bucket_counts(h.bucket_counts(), h.min(), h.max());
        assert_eq!(rebuilt, h);
        let empty =
            LogHistogram::from_bucket_counts(&vec![0u64; LogHistogram::BUCKETS], u64::MAX, 0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn loghist_bucket_snapshot_length_checked() {
        let _ = LogHistogram::from_bucket_counts(&[0u64; 3], 0, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn loghist_percentile_range_checked() {
        let mut h = LogHistogram::new();
        h.record(1);
        let _ = h.percentile(-1.0);
    }

    #[test]
    fn exemplars_keep_first_per_bucket_and_stay_bucket_sorted() {
        let mut h = LogHistogram::new();
        h.record_with_exemplar(100, 7);
        h.record_with_exemplar(101, 8); // same bucket as 100: ignored
        h.record_with_exemplar(3, 9);
        assert_eq!(h.count(), 3);
        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        assert_eq!((ex[0].value, ex[0].trace_id), (3, 9));
        assert_eq!((ex[1].value, ex[1].trace_id), (100, 7));
        assert!(ex[0].bucket < ex[1].bucket, "sorted by bucket");
        assert_eq!(ex[1].bucket, LogHistogram::bucket_index(100));
        h.clear_exemplars();
        assert!(h.exemplars().is_empty());
        assert_eq!(h.count(), 3, "clearing exemplars keeps counts");
    }

    #[test]
    fn exemplar_capacity_is_bounded() {
        let mut h = LogHistogram::new();
        for i in 0..200u64 {
            // Distinct octaves so every record targets a fresh bucket.
            h.record_with_exemplar(1 << (i % 60), i);
        }
        assert!(h.exemplars().len() <= LogHistogram::MAX_EXEMPLARS);
    }

    #[test]
    fn merge_unions_exemplars_keep_first() {
        let mut a = LogHistogram::new();
        a.record_with_exemplar(50, 1);
        let mut b = LogHistogram::new();
        b.record_with_exemplar(51, 2); // same bucket: a's slot wins
        b.record_with_exemplar(4000, 3); // new bucket: adopted
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let ids: Vec<u64> = a.exemplars().iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn loghist_matches_summary_on_small_values() {
        // For values < 16 buckets are exact, so LogHistogram must agree
        // with Summary's nearest-rank answer bit for bit.
        let samples: Vec<u64> = (0..500).map(|i| (i * 7 + 3) % 16).collect();
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = Summary::from_samples(samples.iter().map(|&v| v as f64)).unwrap();
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p) as f64, s.percentile(p), "p{p}");
        }
    }
}

#[cfg(test)]
mod loghist_properties {
    use super::*;
    use crate::Summary;
    use proptest::prelude::*;

    /// Draws 400 samples from `gen` over a SplitMix64 stream, then checks
    /// every interesting percentile against the exact sorted-vector answer:
    /// `exact <= approx <= exact * (1 + 1/16) + 1`.
    fn prop_check_distribution(seed: u64, gen: impl Fn(u64) -> u64) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let samples: Vec<u64> = (0..400).map(|_| gen(next())).collect();
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let exact = Summary::from_samples(samples.iter().map(|&v| v as f64)).unwrap();
        for p in [0.0, 1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let approx = h.percentile(p) as f64;
            let reference = exact.percentile(p);
            assert!(
                approx >= reference,
                "p{p}: approx {approx} under-reports exact {reference}"
            );
            let bound = reference * (1.0 + 1.0 / SUB as f64) + 1.0;
            assert!(
                approx <= bound,
                "p{p}: approx {approx} exceeds bound {bound} (exact {reference})"
            );
        }
        assert_eq!(h.max() as f64, exact.max());
        assert_eq!(h.min() as f64, exact.min());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Uniform draws over several magnitude ranges.
        #[test]
        fn uniform_within_contract(seed in 0u64..1_000_000, span in 1u64..1 << 40) {
            prop_check_distribution(seed, move |x| x % span);
        }

        /// Zipf-ish heavy tail: rank r gets value span / (r + 1).
        #[test]
        fn zipf_within_contract(seed in 0u64..1_000_000) {
            prop_check_distribution(seed, |x| (1u64 << 40) / (x % 512 + 1));
        }

        /// Adversarial: values clustered hard on bucket boundaries.
        #[test]
        fn bucket_boundary_within_contract(seed in 0u64..1_000_000) {
            prop_check_distribution(seed, |x| {
                let shift = (x % 50) as u32;
                let base = 1u64 << shift;
                match x % 3 {
                    0 => base - 1,
                    1 => base,
                    _ => base + 1,
                }
            });
        }
    }
}
