use core::fmt;

/// Selection-count histogram over a fixed set of categories.
///
/// The experiment harness draws millions of peer samples; this type tallies
/// them per peer and hands the counts to [`ChiSquare`](crate::ChiSquare) and
/// [`divergence`](crate::divergence). Categories are dense indices
/// `0..categories` (peer ranks).
///
/// # Example
///
/// ```
/// use stats::CategoricalHistogram;
///
/// let mut h = CategoricalHistogram::new(3);
/// for c in [0usize, 1, 1, 2, 2, 2] {
///     h.record(c);
/// }
/// assert_eq!(h.counts(), &[1, 2, 3]);
/// assert_eq!(h.total(), 6);
/// assert_eq!(h.mode(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl CategoricalHistogram {
    /// Creates a histogram with the given number of categories, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `categories == 0`.
    pub fn new(categories: usize) -> CategoricalHistogram {
        assert!(categories > 0, "histogram needs at least one category");
        CategoricalHistogram {
            counts: vec![0; categories],
            total: 0,
        }
    }

    /// Records one observation of `category`.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn record(&mut self, category: usize) {
        self.counts[category] += 1;
        self.total += 1;
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.counts.len()
    }

    /// Per-category counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one category.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range.
    pub fn count(&self, category: usize) -> u64 {
        self.counts[category]
    }

    /// Empirical probability of one category (0 when nothing recorded).
    pub fn frequency(&self, category: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[category] as f64 / self.total as f64
        }
    }

    /// The most frequent category (smallest index on ties); `None` when
    /// nothing has been recorded.
    pub fn mode(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))?;
        Some(idx)
    }

    /// Number of categories never observed.
    pub fn empty_categories(&self) -> usize {
        self.counts.iter().filter(|&&c| c == 0).count()
    }

    /// Merges another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if category counts differ.
    pub fn merge(&mut self, other: &CategoricalHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histograms must have equal category counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl fmt::Display for CategoricalHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram({} categories, {} observations)",
            self.counts.len(),
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut h = CategoricalHistogram::new(4);
        h.record(0);
        h.record(3);
        h.record(3);
        assert_eq!(h.counts(), &[1, 0, 0, 2]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(3), 2);
        assert!((h.frequency(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.mode(), Some(3));
        assert_eq!(h.empty_categories(), 2);
        assert_eq!(h.categories(), 4);
    }

    #[test]
    fn empty_histogram() {
        let h = CategoricalHistogram::new(2);
        assert_eq!(h.total(), 0);
        assert_eq!(h.frequency(0), 0.0);
        assert_eq!(h.mode(), None);
        assert_eq!(h.empty_categories(), 2);
    }

    #[test]
    fn mode_tie_prefers_smallest_index() {
        let mut h = CategoricalHistogram::new(3);
        h.record(2);
        h.record(1);
        assert_eq!(h.mode(), Some(1));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CategoricalHistogram::new(2);
        a.record(0);
        let mut b = CategoricalHistogram::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 2]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "equal category counts")]
    fn merge_size_mismatch_panics() {
        let mut a = CategoricalHistogram::new(2);
        a.merge(&CategoricalHistogram::new(3));
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_categories_panics() {
        let _ = CategoricalHistogram::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_record_panics() {
        CategoricalHistogram::new(1).record(1);
    }

    #[test]
    fn display_mentions_sizes() {
        let h = CategoricalHistogram::new(5);
        assert!(h.to_string().contains("5 categories"));
    }
}
