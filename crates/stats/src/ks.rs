//! One-sample Kolmogorov–Smirnov test against Uniform(0, 1).
//!
//! Used by experiment E5b to check that the *points* `s` drawn by the
//! sampler and the per-trial acceptance behaviour do not skew the accepted
//! region, and by the simnet tests to validate latency-model samplers.

use core::fmt;

/// Result of a one-sample KS test against the uniform distribution on
/// `[0, 1)`.
///
/// # Example
///
/// ```
/// use stats::ks::KolmogorovSmirnov;
///
/// // An obviously non-uniform sample concentrated near 0.
/// let bad: Vec<f64> = (0..200).map(|i| i as f64 / 2000.0).collect();
/// let t = KolmogorovSmirnov::test_uniform(&bad).unwrap();
/// assert!(t.p_value() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KolmogorovSmirnov {
    statistic: f64,
    n: usize,
    p_value: f64,
}

impl KolmogorovSmirnov {
    /// Runs the test on samples that must lie in `[0, 1)`.
    ///
    /// Returns `None` for an empty sample.
    ///
    /// # Panics
    ///
    /// Panics if any sample is outside `[0, 1)` or not finite.
    pub fn test_uniform(samples: &[f64]) -> Option<KolmogorovSmirnov> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        for &s in &sorted {
            assert!(
                s.is_finite() && (0.0..1.0).contains(&s),
                "KS uniform sample outside [0, 1): {s}"
            );
        }
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        let nf = n as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            // Empirical CDF jumps from i/n to (i+1)/n at x; the model CDF is x.
            let d_plus = (i as f64 + 1.0) / nf - x;
            let d_minus = x - i as f64 / nf;
            d = d.max(d_plus).max(d_minus);
        }
        Some(KolmogorovSmirnov {
            statistic: d,
            n,
            p_value: ks_sf(d, n),
        })
    }

    /// The KS statistic `D = sup |F̂(x) − x|`.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Asymptotic p-value (Kolmogorov distribution with the small-sample
    /// effective-`n` correction of Stephens).
    pub fn p_value(&self) -> f64 {
        self.p_value
    }

    /// Whether uniformity is rejected at significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

impl fmt::Display for KolmogorovSmirnov {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KS D = {:.4} (n = {}), p = {:.4}",
            self.statistic, self.n, self.p_value
        )
    }
}

/// Survival function of the KS statistic: `Pr[D ≥ d]`, using the
/// Kolmogorov series with Stephens' effective sample size.
fn ks_sf(d: f64, n: usize) -> f64 {
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let jf = j as f64;
        let term = (-2.0 * jf * jf * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_spread_sample_not_rejected() {
        // Midpoints i+0.5 / n minimize D.
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let t = KolmogorovSmirnov::test_uniform(&samples).unwrap();
        assert!(t.statistic() < 0.001);
        assert!(t.p_value() > 0.99);
        assert!(!t.rejects_at(0.05));
    }

    #[test]
    fn concentrated_sample_rejected() {
        let samples: Vec<f64> = (0..500).map(|i| 0.001 * (i as f64 / 500.0)).collect();
        let t = KolmogorovSmirnov::test_uniform(&samples).unwrap();
        assert!(t.statistic() > 0.9);
        assert!(t.p_value() < 1e-10);
        assert!(t.rejects_at(0.001));
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(KolmogorovSmirnov::test_uniform(&[]).is_none());
    }

    #[test]
    fn statistic_matches_manual_small_case() {
        // n = 2, samples {0.25, 0.5}: CDF steps at 0.25 (0→0.5), 0.5 (0.5→1).
        // D = max(0.5−0.25, 0.25−0, 1−0.5, 0.5−0.5) = 0.5.
        let t = KolmogorovSmirnov::test_uniform(&[0.25, 0.5]).unwrap();
        assert!((t.statistic() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn out_of_range_panics() {
        let _ = KolmogorovSmirnov::test_uniform(&[1.5]);
    }

    #[test]
    fn display_mentions_d() {
        let t = KolmogorovSmirnov::test_uniform(&[0.5]).unwrap();
        assert!(t.to_string().contains("KS D"));
    }
}
