//! Statistical verification toolkit for the `random-peer` reproduction.
//!
//! The claims in King & Saia's paper are distributional ("each peer is chosen
//! with probability exactly `1/n`", "the minimum arc is `Θ(1/n²)`", "expected
//! messages are `O(log n)`"). This crate provides the machinery the
//! experiment harness uses to check them:
//!
//! * [`ChiSquare`] — Pearson goodness-of-fit test against a uniform (or any
//!   discrete) distribution, with p-values computed from the regularized
//!   incomplete gamma function ([`gamma`]).
//! * [`divergence`] — total-variation distance, KL divergence and min/max
//!   probability ratios between empirical and reference distributions.
//! * [`Summary`] / [`Welford`] — streaming and batch descriptive statistics
//!   with percentiles and standard errors.
//! * [`fit`] — least-squares fits, in particular log–log slope estimation
//!   used to check `Θ(1/n²)` / `Θ(log n)` scaling claims.
//! * [`ks::KolmogorovSmirnov`] — one-sample KS test against the uniform
//!   distribution on `[0, 1)`.
//! * [`proportion`] — Wilson confidence intervals for success rates.
//!
//! Everything is `f64`-based, allocation-light and dependency-free, so it
//! can be reused from tests, benches and binaries alike.
//!
//! # Example: is a die fair?
//!
//! ```
//! use stats::ChiSquare;
//!
//! let observed = [98u64, 103, 100, 96, 102, 101];
//! let test = ChiSquare::uniform(&observed).unwrap();
//! assert!(test.p_value() > 0.05, "a fair die should not be rejected");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chisquare;
mod describe;
pub mod divergence;
pub mod entropy;
pub mod fit;
pub mod gamma;
mod histogram;
pub mod ks;
pub mod proportion;

pub use chisquare::{ChiSquare, ChiSquareError};
pub use describe::{Summary, Welford};
pub use histogram::{CategoricalHistogram, Exemplar, LogHistogram};
