//! Confidence intervals for binomial proportions.
//!
//! Used to report per-trial success rates (Theorem 7 argues the per-trial
//! acceptance probability is `Ω(1)`) and failure rates under churn (E11)
//! with honest uncertainty.

use core::fmt;

/// A two-sided confidence interval for a binomial proportion, computed with
/// the Wilson score method (well-behaved even for extreme proportions and
/// small samples, unlike the normal approximation).
///
/// # Example
///
/// ```
/// use stats::proportion::wilson;
///
/// let ci = wilson(480, 1000, 0.95);
/// assert!(ci.contains(0.48));
/// assert!(ci.low() > 0.44 && ci.high() < 0.52);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionCi {
    point: f64,
    low: f64,
    high: f64,
    confidence: f64,
}

impl ProportionCi {
    /// The point estimate `successes / trials`.
    pub fn point(&self) -> f64 {
        self.point
    }

    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// The confidence level the interval was built for.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Whether `p` lies inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        (self.low..=self.high).contains(&p)
    }
}

impl fmt::Display for ProportionCi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] @ {:.0}%",
            self.point,
            self.low,
            self.high,
            self.confidence * 100.0
        )
    }
}

/// Wilson score interval for `successes` out of `trials`.
///
/// # Panics
///
/// Panics if `trials == 0`, `successes > trials`, or `confidence` is not in
/// `(0, 1)`.
pub fn wilson(successes: u64, trials: u64, confidence: f64) -> ProportionCi {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes exceed trials");
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0, 1), got {confidence}"
    );
    let z = standard_normal_quantile(0.5 + confidence / 2.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ProportionCi {
        point: p,
        low: (center - half).max(0.0),
        high: (center + half).min(1.0),
        confidence,
    }
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Acklam's rational approximation; absolute error below `1.2e-9`, ample for
/// interval construction.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let tail = |q: f64| -> f64 {
        let r = (-2.0 * q.ln()).sqrt();
        (((((C[0] * r + C[1]) * r + C[2]) * r + C[3]) * r + C[4]) * r + C[5])
            / ((((D[0] * r + D[1]) * r + D[2]) * r + D[3]) * r + 1.0)
    };

    if p < P_LOW {
        tail(p)
    } else if p > 1.0 - P_LOW {
        -tail(1.0 - p)
    } else {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((standard_normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
        assert!((standard_normal_quantile(0.8413) - 1.0).abs() < 1e-3);
        assert!((standard_normal_quantile(0.999) - 3.090_232).abs() < 1e-5);
    }

    #[test]
    fn quantile_is_odd_around_half() {
        for &p in &[0.01, 0.1, 0.3, 0.49] {
            let a = standard_normal_quantile(p);
            let b = standard_normal_quantile(1.0 - p);
            assert!((a + b).abs() < 1e-9, "asymmetry at {p}");
        }
    }

    #[test]
    fn wilson_covers_true_proportion() {
        let ci = wilson(500, 1000, 0.95);
        assert!(ci.contains(0.5));
        assert!((ci.point() - 0.5).abs() < 1e-12);
        assert!(ci.low() > 0.46 && ci.high() < 0.54);
        assert_eq!(ci.confidence(), 0.95);
    }

    #[test]
    fn wilson_extremes_stay_in_unit_interval() {
        let zero = wilson(0, 20, 0.95);
        assert_eq!(zero.point(), 0.0);
        assert_eq!(zero.low(), 0.0);
        assert!(zero.high() > 0.0 && zero.high() < 0.3);
        let all = wilson(20, 20, 0.95);
        assert_eq!(all.high(), 1.0);
        assert!(all.low() > 0.7);
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let narrow = wilson(50, 100, 0.8);
        let wide = wilson(50, 100, 0.99);
        assert!(wide.high() - wide.low() > narrow.high() - narrow.low());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = wilson(0, 0, 0.95);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn successes_exceeding_trials_panics() {
        let _ = wilson(5, 4, 0.95);
    }

    #[test]
    fn display_shows_interval() {
        let ci = wilson(1, 2, 0.95);
        assert!(ci.to_string().contains('['));
    }
}
