//! Deterministic, low-overhead observability for the simulation stack.
//!
//! The paper's headline claims are *cost* claims — O(log n) messages and
//! latency per random-peer draw — so the repro needs more than flat
//! aggregate counters: it needs tail distributions, per-operation hop
//! traces, and per-phase cost attribution, all without perturbing either
//! the deterministic RNG streams or the n=10^7 wall-clock budgets.
//!
//! * [`Recorder`] — interned [`CounterId`]/[`HistogramId`] handles over
//!   preallocated atomic slots: no per-event `String` allocation or map
//!   lookup on the hot path. Histograms are log-bucketed
//!   ([`stats::LogHistogram`] math) and report p50/p90/p99/p999/max.
//! * [`LookupTrace`] / flight recorder — each `find_successor` walk can
//!   record its full hop path (node, finger level, forged/honest, per-hop
//!   latency) into a bounded ring buffer, gated by a single relaxed
//!   atomic-bool check when disabled.
//! * [`ScopeToken`] cost attribution — label a region (a defended draw, a
//!   maintenance drain round, a `bulk_join`) and get the counter deltas it
//!   caused, instead of one global counter soup.
//! * [`WindowSnapshot`] / [`TimeSeries`] — longitudinal view: closing an
//!   observation window ([`Recorder::reset_window`]) yields per-window
//!   counter *deltas* (computed per slot, so zero-skipping snapshots can
//!   never drop a column) and per-window histogram tails; a fixed-capacity
//!   ring keeps the recent history for breach dumps, and merging all
//!   windows reproduces the whole-run histogram within bucketing error.
//! * [`HealthEventRecord`] — attributed SLO breach/recovery events pushed
//!   by the `chord` watchdog (rule, window, bound, offending nodes,
//!   cost-attribution scope).
//! * [`TraceDump`] exporters — deterministic pretty text and Chrome
//!   `trace_event` JSON (load in `chrome://tracing` or Perfetto), plus an
//!   FNV-1a digest over the full trace stream for byte-stable record
//!   fields. Hops carry retry-attempt and fallback-tier annotations
//!   ([`FallbackTier`]) so a degraded lookup's path explains itself.
//! * Tail exemplars — [`Recorder::record_with_exemplar`] stores the
//!   operation ordinal of the first sample to land in each histogram
//!   bucket per window ([`stats::Exemplar`]), so a p99/p999 figure links
//!   to a concrete replayable [`LookupTrace`] (matched via
//!   `LookupTrace::ordinal`).
//! * [`SpanProfiler`] — deterministic per-phase cost attribution
//!   (finger walk vs retry/backoff vs successor-walk vs quorum vs
//!   maintenance repair) with collapsed-stack flamegraph export.
//!
//! # Example
//!
//! ```
//! use telemetry::Recorder;
//!
//! let r = Recorder::new();
//! let hops = r.counter("lookup.hops");
//! let hist = r.histogram("lookup.hops");
//! let scope = r.begin_scope();
//! r.add(hops, 3);
//! r.record(hist, 3);
//! r.end_scope("draw", scope);
//! assert_eq!(r.counter_value(hops), 3);
//! assert_eq!(r.histogram_snapshot(hist).max(), 3);
//! assert_eq!(r.scope_breakdown()["draw"].counters["lookup.hops"], 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profiler;
mod recorder;
mod timeseries;
mod trace;

pub use profiler::{SpanId, SpanProfiler, SpanTotal};
pub use recorder::{CounterId, HistogramId, Recorder, ScopeBreakdown, ScopeToken};
pub use timeseries::{HealthEventRecord, TimeSeries, WindowSnapshot};
pub use trace::{FallbackTier, HopRecord, LookupTrace, TraceDump, TraceOutcome};
