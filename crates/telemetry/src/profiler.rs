//! Deterministic span profiler: per-phase cost attribution with interned
//! span ids and flamegraph-compatible export.
//!
//! The paper's cost bound is per *lookup*, but since the retry/fallback
//! work a slow lookup's latency may be owed to backoff, successor-walks,
//! quorum verification or maintenance repair rather than the finger walk
//! itself. The [`SpanProfiler`] attributes **simulated** cost (ticks or
//! messages — the caller picks the unit per span) to a fixed taxonomy of
//! phases, with the same determinism contract as the rest of the
//! recorder: no RNG draws, no wall-clock reads, relaxed atomic adds on
//! preallocated slots, so the profile is a pure function of the run.
//!
//! Span names are semicolon-separated stacks (`lookup;retry_backoff`),
//! which makes [`SpanProfiler::collapsed`] directly consumable by
//! `flamegraph.pl` / speedscope ("collapsed stack" format, one
//! `stack cost` line per span).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Fixed span-slot capacity. The taxonomy is a dozen phases; 32 leaves
/// slack while keeping the always-allocated footprint at 512 B.
const SPAN_CAPACITY: usize = 32;

/// Interned handle for a named span; obtained once from
/// [`SpanProfiler::span`], then used for lock-free cost adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u32);

/// One resolved span row: how many times the phase ran and its summed
/// simulated cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanTotal {
    /// Number of [`SpanProfiler::add`] calls attributed to the span.
    pub count: u64,
    /// Summed simulated cost (ticks or messages, caller-defined).
    pub cost: u64,
}

/// Deterministic per-phase cost profiler (see the module docs).
///
/// # Example
///
/// ```
/// use telemetry::SpanProfiler;
///
/// let p = SpanProfiler::new();
/// let walk = p.span("lookup;finger_walk");
/// let retry = p.span("lookup;retry_backoff");
/// p.add(walk, 12);
/// p.add(retry, 40);
/// assert_eq!(p.top(1)[0], ("lookup;retry_backoff".to_string(), 40));
/// assert!(p.collapsed().contains("lookup;finger_walk 12\n"));
/// ```
#[derive(Debug)]
pub struct SpanProfiler {
    names: Mutex<Vec<&'static str>>,
    counts: Box<[AtomicU64]>,
    costs: Box<[AtomicU64]>,
}

impl SpanProfiler {
    /// Creates an empty profiler.
    pub fn new() -> SpanProfiler {
        SpanProfiler {
            names: Mutex::new(Vec::new()),
            counts: (0..SPAN_CAPACITY).map(|_| AtomicU64::new(0)).collect(),
            costs: (0..SPAN_CAPACITY).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Registers (or looks up) a span by name and returns its handle.
    /// Idempotent; meant for setup paths, not per-event use. Names are
    /// `'static` on purpose — the taxonomy is compiled in, never built
    /// from runtime data.
    ///
    /// # Panics
    ///
    /// Panics if more than 32 distinct spans are registered.
    pub fn span(&self, name: &'static str) -> SpanId {
        let mut names = self.names.lock();
        if let Some(idx) = names.iter().position(|n| *n == name) {
            return SpanId(idx as u32);
        }
        assert!(
            names.len() < SPAN_CAPACITY,
            "span capacity ({SPAN_CAPACITY}) exhausted registering {name:?}"
        );
        names.push(name);
        SpanId((names.len() - 1) as u32)
    }

    /// Attributes `cost` simulated units to a span (two relaxed atomic
    /// adds; lock-free).
    #[inline]
    pub fn add(&self, id: SpanId, cost: u64) {
        self.counts[id.0 as usize].fetch_add(1, Ordering::Relaxed);
        self.costs[id.0 as usize].fetch_add(cost, Ordering::Relaxed);
    }

    /// Every registered span with its count and summed cost, name-sorted.
    /// Untouched spans are included (zero rows), so column sets are stable
    /// across runs that exercise different phases.
    pub fn totals(&self) -> BTreeMap<String, SpanTotal> {
        let names = self.names.lock();
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    (*n).to_owned(),
                    SpanTotal {
                        count: self.counts[i].load(Ordering::Relaxed),
                        cost: self.costs[i].load(Ordering::Relaxed),
                    },
                )
            })
            .collect()
    }

    /// The `n` most expensive spans, cost-descending (name-ascending on
    /// ties, so the order is deterministic); zero-cost spans are omitted.
    pub fn top(&self, n: usize) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = self
            .totals()
            .into_iter()
            .filter(|(_, t)| t.cost > 0)
            .map(|(name, t)| (name, t.cost))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Collapsed-stack export: one `stack cost` line per nonzero span,
    /// name-sorted — byte-deterministic and directly consumable by
    /// flamegraph tooling.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (name, t) in self.totals() {
            if t.cost > 0 {
                out.push_str(&name);
                out.push(' ');
                out.push_str(&t.cost.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Zeroes every span's count and cost; registrations stay valid.
    pub fn reset(&self) {
        for slot in self.counts.iter().chain(self.costs.iter()) {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Approximate resident bytes (slots plus interned name pointers).
    pub fn bytes(&self) -> usize {
        SPAN_CAPACITY * 16 + self.names.lock().len() * 16
    }
}

impl Default for SpanProfiler {
    fn default() -> SpanProfiler {
        SpanProfiler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_costs_accumulate() {
        let p = SpanProfiler::new();
        let a = p.span("lookup;finger_walk");
        let b = p.span("lookup;finger_walk");
        assert_eq!(a, b);
        p.add(a, 3);
        p.add(b, 4);
        let totals = p.totals();
        assert_eq!(totals["lookup;finger_walk"].count, 2);
        assert_eq!(totals["lookup;finger_walk"].cost, 7);
    }

    #[test]
    fn top_is_cost_descending_with_deterministic_ties() {
        let p = SpanProfiler::new();
        let a = p.span("b_span");
        let b = p.span("a_span");
        let c = p.span("big");
        let idle = p.span("idle");
        p.add(a, 5);
        p.add(b, 5);
        p.add(c, 100);
        let _ = idle; // registered but never charged: omitted from top
        let top = p.top(10);
        assert_eq!(
            top,
            vec![
                ("big".to_string(), 100),
                ("a_span".to_string(), 5),
                ("b_span".to_string(), 5),
            ]
        );
        assert_eq!(p.top(1).len(), 1);
    }

    #[test]
    fn collapsed_is_flamegraph_shaped_and_sorted() {
        let p = SpanProfiler::new();
        p.add(p.span("lookup;retry_backoff"), 40);
        p.add(p.span("lookup;finger_walk"), 12);
        assert_eq!(
            p.collapsed(),
            "lookup;finger_walk 12\nlookup;retry_backoff 40\n"
        );
    }

    #[test]
    fn reset_preserves_registrations() {
        let p = SpanProfiler::new();
        let s = p.span("x");
        p.add(s, 9);
        p.reset();
        assert_eq!(p.totals()["x"], SpanTotal::default());
        assert_eq!(p.span("x"), s);
        assert!(p.bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "span capacity")]
    fn registration_past_capacity_panics() {
        let p = SpanProfiler::new();
        // Leak to obtain distinct 'static names without a const table.
        for i in 0..=SPAN_CAPACITY {
            let name: &'static str = Box::leak(format!("s{i}").into_boxed_str());
            let _ = p.span(name);
        }
    }
}
