use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use stats::{Exemplar, LogHistogram};

use crate::profiler::SpanProfiler;
use crate::timeseries::{HealthEventRecord, WindowSnapshot};
use crate::trace::{FlightRecorder, LookupTrace};

/// Fixed counter-slot capacity. Registration past this panics — the
/// simulation registers a few dozen counters, so 128 leaves ample slack
/// while keeping the always-allocated footprint at 1 KiB per recorder.
const COUNTER_CAPACITY: usize = 128;

/// Fixed histogram-slot capacity. Bucket arrays are allocated lazily on
/// first record, so unused slots cost one `OnceLock` each.
const HISTOGRAM_CAPACITY: usize = 16;

/// Interned handle for a named counter; obtained once from
/// [`Recorder::counter`], then used for lock-free increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Interned handle for a named histogram; obtained once from
/// [`Recorder::histogram`], then used for lock-free records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(u32);

/// Words in the per-slot exemplar bucket bitmap (one bit per histogram
/// bucket, rounded up).
const EXEMPLAR_WORDS: usize = LogHistogram::BUCKETS.div_ceil(64);

/// One histogram's atomic storage: lazily-allocated log buckets plus the
/// exactly-tracked extrema needed to clamp reported percentiles, plus the
/// per-window exemplar slots (keep-first per bucket; the `seen` bitmap
/// keeps the common already-claimed path to one relaxed load).
#[derive(Debug)]
struct HistSlot {
    buckets: OnceLock<Box<[AtomicU64]>>,
    min: AtomicU64,
    max: AtomicU64,
    exemplar_seen: Box<[AtomicU64]>,
    exemplars: Mutex<Vec<Exemplar>>,
}

impl HistSlot {
    fn new() -> HistSlot {
        HistSlot {
            buckets: OnceLock::new(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplar_seen: (0..EXEMPLAR_WORDS).map(|_| AtomicU64::new(0)).collect(),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    fn buckets(&self) -> &[AtomicU64] {
        self.buckets.get_or_init(|| {
            (0..LogHistogram::BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect()
        })
    }

    /// Offers `trace_id` as the exemplar for `value`'s bucket. Keep-first
    /// per bucket per window: the hot already-claimed path is one relaxed
    /// bitmap load, the claiming path takes the slot lock once.
    fn offer_exemplar(&self, bucket: usize, value: u64, trace_id: u64) {
        let (word, bit) = (bucket / 64, 1u64 << (bucket % 64));
        if self.exemplar_seen[word].load(Ordering::Relaxed) & bit != 0 {
            return;
        }
        let mut slots = self.exemplars.lock();
        // Re-check under the lock (concurrent claimers race benignly in
        // tests; the simulation loop is single-threaded).
        if self.exemplar_seen[word].fetch_or(bit, Ordering::Relaxed) & bit != 0 {
            return;
        }
        if slots.len() < LogHistogram::MAX_EXEMPLARS {
            slots.push(Exemplar {
                bucket,
                value,
                trace_id,
            });
        }
    }

    /// Drains this window's exemplars (bucket-sorted) and reopens every
    /// slot for the next window.
    fn take_exemplars(&self) -> Vec<Exemplar> {
        let mut slots = self.exemplars.lock();
        for word in self.exemplar_seen.iter() {
            word.store(0, Ordering::Relaxed);
        }
        let mut out = std::mem::take(&mut *slots);
        out.sort_by_key(|e| e.bucket);
        out
    }

    fn reset(&self) {
        if let Some(buckets) = self.buckets.get() {
            for b in buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        let _ = self.take_exemplars();
    }
}

/// Window base values for [`Recorder::reset_window`]: the cumulative
/// counter/bucket readings at the last window boundary, kept **per slot**
/// so deltas can never lose a counter the way a zero-skipping
/// [`Recorder::snapshot`] difference would.
#[derive(Debug, Default)]
struct WindowState {
    index: u64,
    counter_base: Vec<u64>,
    hist_base: Vec<Vec<u64>>,
}

/// Per-label cost accumulator: how many scopes completed under the label
/// and the summed counter deltas they caused (indexed by counter slot).
#[derive(Debug, Default)]
struct ScopeAccum {
    ops: u64,
    deltas: Vec<u64>,
}

/// Snapshot of counter values taken at [`Recorder::begin_scope`]; hand it
/// back to [`Recorder::end_scope`] to attribute the deltas to a label.
///
/// Scopes assume the single-threaded simulation loop: two scopes running
/// concurrently over the same recorder would both claim the same deltas.
#[derive(Debug)]
#[must_use = "pass the token to end_scope to record the attribution"]
pub struct ScopeToken {
    start: Vec<u64>,
}

/// Resolved per-label cost breakdown returned by
/// [`Recorder::scope_breakdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeBreakdown {
    /// Number of completed scopes under this label.
    pub ops: u64,
    /// Summed counter deltas attributed to the label (zero deltas omitted).
    pub counters: BTreeMap<String, u64>,
}

/// Interned-handle metrics recorder: atomic counters, log-bucketed
/// histograms, a bounded lookup-trace flight recorder, and cost
/// attribution scopes. See the crate docs for the architecture.
///
/// Counter and histogram updates are relaxed atomic operations on
/// preallocated slots — safe for concurrent use and near-free on the
/// simulation hot path. Registration (name → handle) takes a lock and is
/// meant to happen once at setup.
#[derive(Debug)]
pub struct Recorder {
    counters: Box<[AtomicU64]>,
    counter_names: Mutex<Vec<String>>,
    hist_slots: Box<[HistSlot]>,
    hist_names: Mutex<Vec<String>>,
    tracing: AtomicBool,
    flight: Mutex<FlightRecorder>,
    scopes: Mutex<BTreeMap<&'static str, ScopeAccum>>,
    window: Mutex<WindowState>,
    health: Mutex<Vec<HealthEventRecord>>,
    op_seq: AtomicU64,
    profiler: SpanProfiler,
}

impl Recorder {
    /// Creates an empty recorder with a default flight-recorder capacity
    /// of 64 traces.
    pub fn new() -> Recorder {
        Recorder {
            counters: (0..COUNTER_CAPACITY).map(|_| AtomicU64::new(0)).collect(),
            counter_names: Mutex::new(Vec::new()),
            hist_slots: (0..HISTOGRAM_CAPACITY).map(|_| HistSlot::new()).collect(),
            hist_names: Mutex::new(Vec::new()),
            tracing: AtomicBool::new(false),
            flight: Mutex::new(FlightRecorder::new(64)),
            scopes: Mutex::new(BTreeMap::new()),
            window: Mutex::new(WindowState::default()),
            health: Mutex::new(Vec::new()),
            op_seq: AtomicU64::new(0),
            profiler: SpanProfiler::new(),
        }
    }

    // ---- counters ----

    /// Registers (or looks up) a counter by name and returns its handle.
    /// Idempotent; meant for setup paths, not per-event use.
    ///
    /// # Panics
    ///
    /// Panics if more than 128 distinct counters are registered.
    pub fn counter(&self, name: &str) -> CounterId {
        let mut names = self.counter_names.lock();
        if let Some(idx) = names.iter().position(|n| n == name) {
            return CounterId(idx as u32);
        }
        assert!(
            names.len() < COUNTER_CAPACITY,
            "counter capacity ({COUNTER_CAPACITY}) exhausted registering {name:?}"
        );
        names.push(name.to_owned());
        CounterId((names.len() - 1) as u32)
    }

    /// Increments a counter by one (relaxed atomic; lock-free).
    #[inline]
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `delta` (relaxed atomic; lock-free).
    #[inline]
    pub fn add(&self, id: CounterId, delta: u64) {
        self.counters[id.0 as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].load(Ordering::Relaxed)
    }

    /// Current value of a counter by name (0 if never registered).
    pub fn counter_named(&self, name: &str) -> u64 {
        let names = self.counter_names.lock();
        match names.iter().position(|n| n == name) {
            Some(idx) => self.counters[idx].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefixed(&self, prefix: &str) -> u64 {
        let names = self.counter_names.lock();
        names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with(prefix))
            .map(|(i, _)| self.counters[i].load(Ordering::Relaxed))
            .sum()
    }

    /// Deterministically ordered snapshot of every counter with a nonzero
    /// value (matching the legacy `Metrics` behaviour, where only touched
    /// names appeared).
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let names = self.counter_names.lock();
        names
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let v = self.counters[i].load(Ordering::Relaxed);
                (v > 0).then(|| (n.clone(), v))
            })
            .collect()
    }

    // ---- histograms ----

    /// Registers (or looks up) a histogram by name and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if more than 16 distinct histograms are registered.
    pub fn histogram(&self, name: &str) -> HistogramId {
        let mut names = self.hist_names.lock();
        if let Some(idx) = names.iter().position(|n| n == name) {
            return HistogramId(idx as u32);
        }
        assert!(
            names.len() < HISTOGRAM_CAPACITY,
            "histogram capacity ({HISTOGRAM_CAPACITY}) exhausted registering {name:?}"
        );
        names.push(name.to_owned());
        HistogramId((names.len() - 1) as u32)
    }

    /// Records one observation into a histogram (relaxed atomics).
    #[inline]
    pub fn record(&self, id: HistogramId, value: u64) {
        let slot = &self.hist_slots[id.0 as usize];
        slot.buckets()[LogHistogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.min.fetch_min(value, Ordering::Relaxed);
        slot.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one observation and offers `trace_id` as its bucket's
    /// exemplar for the current window (deterministic keep-first per
    /// bucket; see [`stats::Exemplar`]). The already-claimed path adds
    /// one relaxed bitmap load to [`Recorder::record`], so the call is
    /// safe on the lookup hot path. Exemplar capture is *always on* —
    /// ids are op ordinals, which exist with tracing on or off, so
    /// traced and untraced runs stay byte-identical.
    #[inline]
    pub fn record_with_exemplar(&self, id: HistogramId, value: u64, trace_id: u64) {
        let slot = &self.hist_slots[id.0 as usize];
        let bucket = LogHistogram::bucket_index(value);
        slot.buckets()[bucket].fetch_add(1, Ordering::Relaxed);
        slot.min.fetch_min(value, Ordering::Relaxed);
        slot.max.fetch_max(value, Ordering::Relaxed);
        slot.offer_exemplar(bucket, value, trace_id);
    }

    /// Draws the next operation ordinal — the deterministic id linking a
    /// histogram exemplar to the lookup trace with the same
    /// [`LookupTrace::ordinal`]. Drawn unconditionally (one relaxed
    /// `fetch_add`) so ordinals agree between traced and untraced runs.
    #[inline]
    pub fn next_op_ordinal(&self) -> u64 {
        self.op_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The deterministic span profiler (per-phase simulated cost
    /// attribution; see [`SpanProfiler`]).
    #[inline]
    pub fn profiler(&self) -> &SpanProfiler {
        &self.profiler
    }

    /// Copies a histogram's buckets out into an owned [`LogHistogram`]
    /// for percentile queries and merging.
    pub fn histogram_snapshot(&self, id: HistogramId) -> LogHistogram {
        let slot = &self.hist_slots[id.0 as usize];
        match slot.buckets.get() {
            Some(buckets) => {
                let counts: Vec<u64> = buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                let mut hist = LogHistogram::from_bucket_counts(
                    &counts,
                    slot.min.load(Ordering::Relaxed),
                    slot.max.load(Ordering::Relaxed),
                );
                // Attach the open window's exemplars (peek, don't drain —
                // `reset_window` still owns handing them to the window).
                for e in slot.exemplars.lock().iter() {
                    hist.offer_exemplar(e.value, e.trace_id);
                }
                hist
            }
            None => LogHistogram::new(),
        }
    }

    // ---- observation windows ----

    /// Closes the current observation window and returns it: the delta of
    /// every registered counter and histogram since the previous
    /// `reset_window` call (or since construction / [`Recorder::reset`]
    /// for the first window), then advances the window boundary. The
    /// cumulative counters and histograms themselves are **not** touched,
    /// so end-of-run totals are unaffected by windowing.
    ///
    /// # Why not diff two `snapshot()` calls?
    ///
    /// [`Recorder::snapshot`] deliberately skips zero-valued counters
    /// (legacy `Metrics` behaviour). Subtracting such maps drops any
    /// counter that was nonzero in a previous window but untouched in
    /// this one — its key is simply absent on one side. Window deltas are
    /// therefore computed per counter *slot* against per-slot base values
    /// (the same all-slots-by-index walk [`Recorder::end_scope`] uses),
    /// and the returned [`WindowSnapshot::counters`] map includes zero
    /// deltas for every registered counter.
    ///
    /// Per-window histogram extrema are bucket-derived (the exact min/max
    /// atomics are cumulative): max is the upper edge of the highest
    /// nonzero delta bucket — never *below* the true window max, so
    /// clamped quantiles never under-report — and min the lower edge of
    /// the lowest. Merging all windows thus reproduces the whole-run
    /// histogram's bucket counts exactly and its quantiles to within the
    /// 1/16 bucketing error.
    pub fn reset_window(&self) -> WindowSnapshot {
        let names = self.counter_names.lock();
        let hist_names = self.hist_names.lock();
        let mut state = self.window.lock();
        let registered = names.len();
        if state.counter_base.len() < registered {
            state.counter_base.resize(registered, 0);
        }
        let mut counters = BTreeMap::new();
        for (i, name) in names.iter().enumerate() {
            let now = self.counters[i].load(Ordering::Relaxed);
            let delta = now.saturating_sub(state.counter_base[i]);
            state.counter_base[i] = now;
            counters.insert(name.clone(), delta);
        }
        if state.hist_base.len() < hist_names.len() {
            state.hist_base.resize(hist_names.len(), Vec::new());
        }
        let mut hists = Vec::with_capacity(hist_names.len());
        for (i, name) in hist_names.iter().enumerate() {
            let mut hist = match self.hist_slots[i].buckets.get() {
                Some(buckets) => {
                    let base = &mut state.hist_base[i];
                    if base.len() < buckets.len() {
                        base.resize(buckets.len(), 0);
                    }
                    let mut deltas = vec![0u64; buckets.len()];
                    for (j, bucket) in buckets.iter().enumerate() {
                        let now = bucket.load(Ordering::Relaxed);
                        deltas[j] = now.saturating_sub(base[j]);
                        base[j] = now;
                    }
                    window_hist_from_deltas(&deltas)
                }
                None => LogHistogram::new(),
            };
            // This window's exemplars travel with its delta histogram
            // (keep-first per bucket, slots reopened for the next window).
            for e in self.hist_slots[i].take_exemplars() {
                hist.offer_exemplar(e.value, e.trace_id);
            }
            hists.push((name.clone(), hist));
        }
        let index = state.index;
        state.index += 1;
        WindowSnapshot {
            index,
            counters,
            hists,
            gauges: BTreeMap::new(),
        }
    }

    /// Appends an attributed health event to the flight log. Always on
    /// (unlike lookup traces): the watchdog emits edge-triggered events —
    /// one breach plus one recovery per episode — so volume is bounded by
    /// overlay health, not by traffic.
    pub fn push_health(&self, event: HealthEventRecord) {
        self.health.lock().push(event);
    }

    /// Every health event pushed since construction or [`Recorder::reset`],
    /// in emission order.
    pub fn health_events(&self) -> Vec<HealthEventRecord> {
        self.health.lock().clone()
    }

    // ---- lookup traces / flight recorder ----

    /// Enables or disables lookup tracing. Disabled is the default and
    /// costs one relaxed load per lookup on the hot path.
    pub fn set_tracing(&self, enabled: bool) {
        self.tracing.store(enabled, Ordering::Relaxed);
    }

    /// Whether lookup traces are currently being recorded.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Resizes the flight-recorder ring buffer (dropping retained traces).
    pub fn set_trace_capacity(&self, capacity: usize) {
        *self.flight.lock() = FlightRecorder::new(capacity.max(1));
    }

    /// Pushes a completed lookup trace into the flight recorder. A no-op
    /// when tracing is disabled, so callers may build traces
    /// unconditionally only if they also check [`Recorder::tracing_enabled`].
    pub fn push_trace(&self, trace: LookupTrace) {
        if self.tracing_enabled() {
            self.flight.lock().push(trace);
        }
    }

    /// The retained traces, oldest first.
    pub fn traces(&self) -> Vec<LookupTrace> {
        self.flight.lock().traces()
    }

    /// Total traces ever recorded (including ones evicted from the ring).
    pub fn traces_recorded(&self) -> u64 {
        self.flight.lock().recorded()
    }

    /// FNV-1a digest over every trace ever pushed (eviction does not
    /// change it), for byte-stable record fields.
    pub fn trace_digest(&self) -> u64 {
        self.flight.lock().digest()
    }

    // ---- cost attribution scopes ----

    /// Starts an attribution scope by snapshotting current counter values.
    pub fn begin_scope(&self) -> ScopeToken {
        let registered = self.counter_names.lock().len();
        ScopeToken {
            start: self.counters[..registered]
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Ends an attribution scope, folding the counter deltas since
    /// [`Recorder::begin_scope`] into the accumulator for `label`.
    pub fn end_scope(&self, label: &'static str, token: ScopeToken) {
        let registered = self.counter_names.lock().len();
        let mut scopes = self.scopes.lock();
        let accum = scopes.entry(label).or_default();
        accum.ops += 1;
        if accum.deltas.len() < registered {
            accum.deltas.resize(registered, 0);
        }
        for (i, delta) in accum.deltas.iter_mut().enumerate().take(registered) {
            let now = self.counters[i].load(Ordering::Relaxed);
            // Counters registered mid-scope started at zero.
            let start = token.start.get(i).copied().unwrap_or(0);
            *delta += now.saturating_sub(start);
        }
    }

    /// Per-label cost breakdowns, labels and counter names sorted.
    pub fn scope_breakdown(&self) -> BTreeMap<String, ScopeBreakdown> {
        let names = self.counter_names.lock();
        self.scopes
            .lock()
            .iter()
            .map(|(label, accum)| {
                let counters = accum
                    .deltas
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d > 0)
                    .map(|(i, &d)| (names[i].clone(), d))
                    .collect();
                (
                    (*label).to_owned(),
                    ScopeBreakdown {
                        ops: accum.ops,
                        counters,
                    },
                )
            })
            .collect()
    }

    // ---- lifecycle / accounting ----

    /// Zeroes every counter and histogram and clears traces, scopes, the
    /// trace digest, and the window boundary (the next
    /// [`Recorder::reset_window`] is window 0 again). Registered names
    /// and handles stay valid.
    pub fn reset(&self) {
        for c in self.counters.iter() {
            c.store(0, Ordering::Relaxed);
        }
        for slot in self.hist_slots.iter() {
            slot.reset();
        }
        let cap = self.flight.lock().capacity();
        *self.flight.lock() = FlightRecorder::new(cap);
        self.scopes.lock().clear();
        *self.window.lock() = WindowState::default();
        self.health.lock().clear();
        self.op_seq.store(0, Ordering::Relaxed);
        self.profiler.reset();
    }

    /// Approximate resident bytes of the recorder's storage (counter
    /// slots, allocated histogram buckets, interned names); the scale
    /// bench gates this per node.
    pub fn bytes(&self) -> usize {
        let counters = COUNTER_CAPACITY * 8;
        let hists: usize = self
            .hist_slots
            .iter()
            .map(|s| {
                24 + EXEMPLAR_WORDS * 8
                    + s.exemplars.lock().len() * std::mem::size_of::<Exemplar>()
                    + if s.buckets.get().is_some() {
                        LogHistogram::BUCKETS * 8
                    } else {
                        0
                    }
            })
            .sum();
        let names: usize = self
            .counter_names
            .lock()
            .iter()
            .chain(self.hist_names.lock().iter())
            .map(|n| n.len() + 24)
            .sum();
        let window = {
            let state = self.window.lock();
            state.counter_base.len() * 8
                + state.hist_base.iter().map(|b| b.len() * 8).sum::<usize>()
        };
        counters + hists + names + window + self.profiler.bytes()
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

/// Builds a per-window histogram from delta bucket counts. The exact
/// min/max atomics track the cumulative run, so the window extrema are
/// bucket-derived: max = inclusive upper edge of the highest nonzero
/// bucket (≥ the true window max, so clamped quantiles never
/// under-report), min = lower edge of the lowest nonzero bucket.
fn window_hist_from_deltas(deltas: &[u64]) -> LogHistogram {
    let lo = deltas.iter().position(|&d| d > 0);
    let hi = deltas.iter().rposition(|&d| d > 0);
    match (lo, hi) {
        (Some(lo), Some(hi)) => {
            let min = if lo == 0 {
                0
            } else {
                LogHistogram::bucket_upper(lo - 1) + 1
            };
            let max = LogHistogram::bucket_upper(hi);
            LogHistogram::from_bucket_counts(deltas, min, max)
        }
        _ => LogHistogram::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FallbackTier, HopRecord, TraceOutcome};

    fn tiny_trace(from: u64) -> LookupTrace {
        LookupTrace {
            from,
            target: 42,
            hops: vec![HopRecord {
                node: 7,
                finger_level: 3,
                forged: false,
                latency: 5,
                attempt: 0,
                tier: FallbackTier::Direct,
            }],
            outcome: TraceOutcome::Resolved(7),
            messages: 1,
            latency: 5,
            ordinal: 0,
        }
    }

    #[test]
    fn counter_registration_is_idempotent() {
        let r = Recorder::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.incr(a);
        r.add(b, 4);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.counter_named("x"), 5);
        assert_eq!(r.counter_named("missing"), 0);
    }

    #[test]
    fn snapshot_skips_untouched_counters() {
        let r = Recorder::new();
        let _zero = r.counter("never");
        let hit = r.counter("hit");
        r.incr(hit);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap["hit"], 1);
    }

    #[test]
    fn sum_prefixed_matches_legacy_semantics() {
        let r = Recorder::new();
        r.add(r.counter("lookup.hops"), 3);
        r.add(r.counter("lookup.start"), 1);
        r.add(r.counter("stabilize"), 10);
        assert_eq!(r.sum_prefixed("lookup."), 4);
        assert_eq!(r.sum_prefixed(""), 14);
        assert_eq!(r.sum_prefixed("nothing"), 0);
    }

    #[test]
    fn histogram_snapshot_reports_percentiles() {
        let r = Recorder::new();
        let h = r.histogram("hops");
        for v in 1..=100 {
            r.record(h, v);
        }
        let snap = r.histogram_snapshot(h);
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.max(), 100);
        assert!(snap.p99() >= 99);
        let empty = r.histogram_snapshot(r.histogram("unused"));
        assert!(empty.is_empty());
    }

    #[test]
    fn tracing_gate_controls_flight_recorder() {
        let r = Recorder::new();
        assert!(!r.tracing_enabled());
        r.push_trace(tiny_trace(1));
        assert_eq!(r.traces_recorded(), 0);
        r.set_tracing(true);
        r.push_trace(tiny_trace(1));
        r.push_trace(tiny_trace(2));
        assert_eq!(r.traces_recorded(), 2);
        assert_eq!(r.traces().len(), 2);
        assert_ne!(r.trace_digest(), 0);
    }

    #[test]
    fn flight_recorder_ring_evicts_oldest_but_digest_covers_all() {
        let r = Recorder::new();
        r.set_trace_capacity(2);
        r.set_tracing(true);
        for i in 0..5 {
            r.push_trace(tiny_trace(i));
        }
        let retained = r.traces();
        assert_eq!(retained.len(), 2);
        assert_eq!(retained[0].from, 3);
        assert_eq!(retained[1].from, 4);
        assert_eq!(r.traces_recorded(), 5);

        // Digest depends on all five, not just the retained two.
        let r2 = Recorder::new();
        r2.set_trace_capacity(2);
        r2.set_tracing(true);
        for i in 3..5 {
            r2.push_trace(tiny_trace(i));
        }
        assert_ne!(r.trace_digest(), r2.trace_digest());
    }

    #[test]
    fn scopes_attribute_counter_deltas() {
        let r = Recorder::new();
        let msgs = r.counter("msgs");
        r.add(msgs, 100); // outside any scope
        let t = r.begin_scope();
        r.add(msgs, 7);
        r.end_scope("draw", t);
        let t = r.begin_scope();
        r.add(msgs, 5);
        let late = r.counter("late");
        r.add(late, 2);
        r.end_scope("draw", t);
        let breakdown = r.scope_breakdown();
        assert_eq!(breakdown["draw"].ops, 2);
        assert_eq!(breakdown["draw"].counters["msgs"], 12);
        assert_eq!(breakdown["draw"].counters["late"], 2);
    }

    #[test]
    fn reset_preserves_registrations() {
        let r = Recorder::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        r.add(c, 9);
        r.record(h, 9);
        r.set_tracing(true);
        r.push_trace(tiny_trace(0));
        let t = r.begin_scope();
        r.end_scope("s", t);
        r.reset();
        assert_eq!(r.counter_value(c), 0);
        assert!(r.histogram_snapshot(h).is_empty());
        assert!(r.traces().is_empty());
        assert_eq!(r.trace_digest(), FlightRecorder::new(1).digest());
        assert!(r.scope_breakdown().is_empty());
        assert_eq!(r.counter("c"), c, "registration survives reset");
    }

    #[test]
    fn window_deltas_never_drop_previously_nonzero_counters() {
        let r = Recorder::new();
        let a = r.counter("a");
        let b = r.counter("b");
        r.add(a, 5);
        let w0 = r.reset_window();
        assert_eq!(w0.index, 0);
        assert_eq!(w0.counters["a"], 5);
        assert_eq!(w0.counters["b"], 0, "untouched counters still appear");
        // "a" stays at 5 through window 1: a naive difference of two
        // zero-skipping snapshot() maps would drop it entirely, because
        // its delta is zero on both sides; per-slot bases keep the key.
        r.add(b, 3);
        let w1 = r.reset_window();
        assert_eq!(w1.index, 1);
        assert_eq!(
            w1.counters["a"], 0,
            "counter nonzero in a past window must stay present"
        );
        assert_eq!(w1.counters["b"], 3);
        assert_eq!(r.counter_value(a), 5, "cumulative totals untouched");
    }

    #[test]
    fn window_histograms_are_deltas_and_cumulative_survives() {
        let r = Recorder::new();
        let h = r.histogram("hops");
        for v in [1u64, 2, 3] {
            r.record(h, v);
        }
        let w0 = r.reset_window();
        for v in [100u64, 200] {
            r.record(h, v);
        }
        let w1 = r.reset_window();
        let h0 = w0.hist("hops").unwrap();
        let h1 = w1.hist("hops").unwrap();
        assert_eq!(h0.count(), 3);
        assert_eq!(h1.count(), 2);
        // Bucket-derived extrema: at most one bucket (+1 at this
        // magnitude) above the true max of 3.
        assert!(h0.max() >= 3 && h0.max() <= 4);
        assert!(h1.p99() >= 200);
        // Window 1's tail must not include window 0's samples.
        assert!(h1.min() > 3);
        assert_eq!(r.histogram_snapshot(h).count(), 5);
        assert_eq!(r.histogram_snapshot(h).max(), 200);
    }

    #[test]
    fn reset_rewinds_window_index_and_bases() {
        let r = Recorder::new();
        let c = r.counter("c");
        r.add(c, 7);
        let w0 = r.reset_window();
        assert_eq!((w0.index, w0.counters["c"]), (0, 7));
        r.reset();
        r.add(c, 2);
        let w = r.reset_window();
        assert_eq!(w.index, 0, "reset rewinds the window clock");
        assert_eq!(w.counters["c"], 2, "bases rewind with the counters");
    }

    #[test]
    fn bytes_accounts_for_lazy_buckets() {
        let r = Recorder::new();
        let before = r.bytes();
        let h = r.histogram("h");
        r.record(h, 1);
        assert!(r.bytes() > before + 7000, "bucket allocation must show up");
    }

    #[test]
    fn concurrent_updates_all_land() {
        let r = std::sync::Arc::new(Recorder::new());
        let c = r.counter("shared");
        let h = r.histogram("shared");
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    r.incr(c);
                    r.record(h, i % 64);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(r.counter_value(c), 8000);
        assert_eq!(r.histogram_snapshot(h).count(), 8000);
    }
}
