use std::collections::{BTreeMap, VecDeque};

use stats::LogHistogram;

/// One observation window produced by
/// [`Recorder::reset_window`](crate::Recorder::reset_window): counter
/// *deltas* since the previous window boundary, per-histogram *delta*
/// tails, and feeder-set gauges.
///
/// Deltas are computed per counter **slot** against a per-slot base value,
/// never by diffing two zero-skipping
/// [`Recorder::snapshot`](crate::Recorder::snapshot) maps.
/// The distinction matters: `snapshot()`
/// omits zero-valued counters, so a counter that was nonzero in a previous
/// window and untouched in this one would silently vanish from a
/// map-difference — here it stays present with an explicit zero delta
/// (see the `window_deltas_never_drop_previously_nonzero_counters`
/// regression test in the recorder module).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Zero-based window index; increments on every
    /// `Recorder::reset_window` call and resets with `Recorder::reset`.
    pub index: u64,
    /// Delta of every *registered* counter over this window. Zero deltas
    /// are included on purpose — consumers can zip columns across windows
    /// without realigning keys.
    pub counters: BTreeMap<String, u64>,
    /// Per-histogram delta tail for this window, in registration order.
    /// Extrema are bucket-derived (see `Recorder::reset_window`), so
    /// quantiles are exact to within the histogram's 1/16 bucketing error.
    pub hists: Vec<(String, LogHistogram)>,
    /// Instantaneous gauges stamped by the feeder (live count, backlog,
    /// staleness, …) — the recorder itself never writes these.
    pub gauges: BTreeMap<String, f64>,
}

impl WindowSnapshot {
    /// Delta of a counter in this window (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// This window's delta histogram by name, if registered.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Stamps (or overwrites) a gauge value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// A stamped gauge value (0.0 if absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }
}

/// One attributed health event as stored in the recorder's flight log:
/// which SLO rule fired, in which window, against which bound, and which
/// nodes / cost-attribution scope the breach is pinned on. The typed
/// rule lives in the `chord` watchdog; telemetry stores the rendered
/// form so the crate stays dependency-free.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEventRecord {
    /// Window index the rule was evaluated in.
    pub window: u64,
    /// Stable rule name (e.g. `"hop_p99"`, `"staleness"`, `"chi_drift"`).
    pub rule: String,
    /// `true` on a breach edge, `false` on the matching recovery edge.
    pub breach: bool,
    /// The measured value that was checked against the bound.
    pub measured: f64,
    /// The bound in force when the rule was evaluated.
    pub bound: f64,
    /// Cost-attribution scope label the rule observes
    /// (e.g. `"maintenance.round"`, `"draw.defended"`).
    pub scope: String,
    /// Ring points of the sampled nodes that failed verification in this
    /// window (empty when the rule has no per-node attribution).
    pub nodes: Vec<u64>,
}

/// Fixed-capacity, deterministic ring of [`WindowSnapshot`]s — the
/// longitudinal view the flat end-of-run counters cannot give.
///
/// Pushing past capacity evicts the oldest window ([`TimeSeries::recorded`]
/// still counts every push), mirroring the flight recorder's ring
/// semantics so a breach dump always shows the *most recent* history.
/// Everything is plain owned data: same seed ⇒ byte-identical series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    capacity: usize,
    windows: VecDeque<WindowSnapshot>,
    recorded: u64,
}

impl TimeSeries {
    /// Creates an empty series retaining at most `capacity` windows
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> TimeSeries {
        let capacity = capacity.max(1);
        TimeSeries {
            capacity,
            windows: VecDeque::with_capacity(capacity.min(1024)),
            recorded: 0,
        }
    }

    /// Appends a window, evicting the oldest when full.
    pub fn push(&mut self, window: WindowSnapshot) {
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(window);
        self.recorded += 1;
    }

    /// Retained windows, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &WindowSnapshot> {
        self.windows.iter()
    }

    /// The most recent window, if any.
    pub fn latest(&self) -> Option<&WindowSnapshot> {
        self.windows.back()
    }

    /// Number of retained windows (≤ capacity).
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no windows are retained.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total windows ever pushed (≥ [`TimeSeries::len`]).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Maximum retained windows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Per-window delta column for a counter, oldest first.
    pub fn counter_column(&self, name: &str) -> Vec<u64> {
        self.windows.iter().map(|w| w.counter(name)).collect()
    }

    /// Per-window gauge column, oldest first (0.0 where unstamped).
    pub fn gauge_column(&self, name: &str) -> Vec<f64> {
        self.windows.iter().map(|w| w.gauge(name)).collect()
    }

    /// Merges every retained window's delta histogram for `name` back
    /// into one histogram. When no window was evicted this reproduces
    /// the whole-run histogram: bucket counts match exactly, and the
    /// extrema (hence clamped quantiles) agree to within the 1/16
    /// bucketing error — property-tested in this module.
    pub fn merged_histogram(&self, name: &str) -> LogHistogram {
        let mut merged = LogHistogram::new();
        for w in &self.windows {
            if let Some(h) = w.hist(name) {
                merged.merge(h);
            }
        }
        merged
    }

    /// Approximate resident bytes of the retained windows (counter maps,
    /// histogram buckets, gauge maps) — the scale bench charges this
    /// against the telemetry memory budget.
    pub fn bytes(&self) -> usize {
        self.windows
            .iter()
            .map(|w| {
                let counters: usize = w.counters.keys().map(|k| k.len() + 32).sum();
                let hists: usize = w
                    .hists
                    .iter()
                    .map(|(n, _)| n.len() + 24 + LogHistogram::BUCKETS * 8)
                    .sum();
                let gauges: usize = w.gauges.keys().map(|k| k.len() + 32).sum();
                counters + hists + gauges
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use proptest::prelude::*;

    fn window(index: u64, counters: &[(&str, u64)]) -> WindowSnapshot {
        WindowSnapshot {
            index,
            counters: counters.iter().map(|&(n, v)| (n.to_owned(), v)).collect(),
            hists: Vec::new(),
            gauges: BTreeMap::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_all() {
        let mut ts = TimeSeries::new(2);
        for i in 0..5 {
            ts.push(window(i, &[("x", i)]));
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.recorded(), 5);
        assert_eq!(ts.counter_column("x"), vec![3, 4]);
        assert_eq!(ts.latest().unwrap().index, 4);
    }

    #[test]
    fn gauge_columns_default_to_zero() {
        let mut ts = TimeSeries::new(4);
        let mut w = window(0, &[]);
        w.set_gauge("live", 96.0);
        ts.push(w);
        ts.push(window(1, &[]));
        assert_eq!(ts.gauge_column("live"), vec![96.0, 0.0]);
        assert_eq!(ts.gauge_column("absent"), vec![0.0, 0.0]);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut ts = TimeSeries::new(0);
        ts.push(window(0, &[]));
        ts.push(window(1, &[]));
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.capacity(), 1);
    }

    /// Ring eviction drops whole windows, never mutates survivors: the
    /// retained windows' delta histograms keep their bucket counts *and*
    /// their exemplar slots after older windows fall off the front.
    #[test]
    fn eviction_preserves_surviving_deltas_and_exemplars() {
        let r = Recorder::new();
        let h = r.histogram("hops");
        let mut ts = TimeSeries::new(2);
        // Window i records one value (i+1) with trace id 100+i.
        for i in 0..5u64 {
            r.record_with_exemplar(h, i + 1, 100 + i);
            ts.push(r.reset_window());
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.recorded(), 5);
        let retained: Vec<&WindowSnapshot> = ts.iter().collect();
        for (w, i) in retained.iter().zip(3u64..) {
            assert_eq!(w.index, i);
            let hist = w.hist("hops").expect("delta hist survives eviction");
            assert_eq!(hist.count(), 1);
            let ex = hist.exemplars();
            assert_eq!(ex.len(), 1, "window {i} kept its exemplar");
            assert_eq!(ex[0].value, i + 1);
            assert_eq!(ex[0].trace_id, 100 + i);
        }
        // Merging the survivors unions their exemplars too.
        let merged = ts.merged_histogram("hops");
        let ids: Vec<u64> = merged.exemplars().iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![103, 104]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Tentpole property: splitting a run into windows and merging the
        /// per-window delta histograms reproduces the whole-run histogram —
        /// bucket counts exactly, quantiles to within the 1/16 bucketing
        /// error (the merged extrema are bucket-derived, the cumulative
        /// ones exact).
        #[test]
        fn merging_windows_reproduces_the_whole_run_histogram(
            windows in proptest::collection::vec(
                proptest::collection::vec(1u64..1_000_000, 0..40),
                1..8,
            ),
        ) {
            let r = Recorder::new();
            let h = r.histogram("hops");
            let mut ts = TimeSeries::new(windows.len());
            let mut whole = LogHistogram::new();
            for values in &windows {
                for &v in values {
                    r.record(h, v);
                    whole.record(v);
                }
                ts.push(r.reset_window());
            }
            let merged = ts.merged_histogram("hops");
            prop_assert_eq!(merged.bucket_counts(), whole.bucket_counts());
            prop_assert_eq!(merged.count(), whole.count());
            if !whole.is_empty() {
                for p in [50.0, 90.0, 99.0] {
                    let exact = whole.percentile(p);
                    let windowed = merged.percentile(p);
                    prop_assert!(windowed >= exact);
                    prop_assert!(
                        windowed <= exact + exact / 16 + 1,
                        "p{} drifted past bucketing error: {} vs {}",
                        p, windowed, exact
                    );
                }
            }
        }

        /// Wraparound property: with capacity smaller than the number of
        /// windows pushed, merging the survivors is bucket-exact against a
        /// reference histogram built from only the non-evicted suffix, and
        /// the surviving windows' exemplars (one per window here) are
        /// exactly the suffix's trace ids, in order.
        #[test]
        fn merge_stays_bucket_exact_after_wraparound(
            windows in proptest::collection::vec(
                proptest::collection::vec(1u64..1_000_000, 1..20),
                2..10,
            ),
            capacity in 1usize..6,
        ) {
            let r = Recorder::new();
            let h = r.histogram("hops");
            let mut ts = TimeSeries::new(capacity);
            for (i, values) in windows.iter().enumerate() {
                for &v in values {
                    // First value of each window claims the exemplar slot
                    // for its bucket; trace id encodes the window index.
                    r.record_with_exemplar(h, v, i as u64);
                }
                ts.push(r.reset_window());
            }
            let survivors = windows.len().min(capacity);
            let suffix = &windows[windows.len() - survivors..];
            let mut reference = LogHistogram::new();
            for values in suffix {
                for &v in values {
                    reference.record(v);
                }
            }
            let merged = ts.merged_histogram("hops");
            prop_assert_eq!(ts.len(), survivors);
            prop_assert_eq!(merged.bucket_counts(), reference.bucket_counts());
            prop_assert_eq!(merged.count(), reference.count());
            // Every surviving window still resolves to a suffix trace id,
            // and the merged union keeps first-claim-wins semantics: each
            // exemplar's id names a window that is still retained.
            let first_kept = (windows.len() - survivors) as u64;
            for e in merged.exemplars() {
                prop_assert!(e.trace_id >= first_kept,
                    "exemplar {} cites an evicted window", e.trace_id);
            }
            prop_assert!(!merged.exemplars().is_empty());
        }
    }
}
