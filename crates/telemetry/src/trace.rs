use std::collections::VecDeque;
use std::fmt::Write as _;

/// Which degradation tier issued a hop (the retry/fallback path; see
/// `chord::RetryPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackTier {
    /// Ordinary finger routing (no fallback active).
    #[default]
    Direct,
    /// The bounded successor-walk fallback tier.
    Walk,
    /// The verified-quorum fallback tier.
    Quorum,
}

impl FallbackTier {
    /// Stable lowercase label used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            FallbackTier::Direct => "direct",
            FallbackTier::Walk => "walk",
            FallbackTier::Quorum => "quorum",
        }
    }

    fn code(self) -> u64 {
        match self {
            FallbackTier::Direct => 0,
            FallbackTier::Walk => 1,
            FallbackTier::Quorum => 2,
        }
    }
}

/// One hop of a `find_successor` walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Ring point of the node the message was sent to.
    pub node: u64,
    /// Finger level chosen: bit length of the ring distance this hop
    /// covered (≈ which finger-table row resolved it).
    pub finger_level: u8,
    /// Whether the hop target is a coalition node answering with forged
    /// routing state.
    pub forged: bool,
    /// Simulated latency of this hop's message, in ticks.
    pub latency: u64,
    /// Which retry attempt issued this hop (0 = the first try; nonzero
    /// means the lookup was re-routed after backoff).
    pub attempt: u8,
    /// Which degradation tier issued this hop — the *why was this lookup
    /// slow* annotation the retry/fallback path writes.
    pub tier: FallbackTier,
}

/// How a traced lookup ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The walk reached the honest successor of the target.
    Resolved(u64),
    /// A coalition node captured the lookup by claiming ownership.
    Captured(u64),
    /// The walk terminated without an answer (all probes dead).
    Unresolved,
}

/// Full record of one lookup walk: the hop path plus its cost totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTrace {
    /// Ring point of the node that started the walk.
    pub from: u64,
    /// The target ring point being resolved.
    pub target: u64,
    /// The hop path, in order.
    pub hops: Vec<HopRecord>,
    /// How the walk ended.
    pub outcome: TraceOutcome,
    /// Total messages sent (may exceed `hops.len()` — dead probes and
    /// successor-list scans send messages without advancing the walk).
    pub messages: u64,
    /// Total sequential latency in ticks.
    pub latency: u64,
    /// Run-wide operation ordinal (from `Recorder::next_op_ordinal`).
    /// This is the id histogram exemplars store, so a tail bucket can be
    /// joined back to its trace even after ring eviction; it is drawn
    /// whether or not tracing is enabled, so ids agree across traced and
    /// untraced replays of the same seed.
    pub ordinal: u64,
}

/// Bounded ring buffer of lookup traces with an eviction-stable digest.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<LookupTrace>,
    recorded: u64,
    digest: u64,
}

/// FNV-1a offset basis; the digest of an empty trace stream.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut digest: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        digest ^= u64::from(byte);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(1024)),
            recorded: 0,
            digest: FNV_OFFSET,
        }
    }

    pub(crate) fn push(&mut self, trace: LookupTrace) {
        self.digest = fnv_u64(self.digest, trace.from);
        self.digest = fnv_u64(self.digest, trace.target);
        self.digest = fnv_u64(self.digest, trace.messages);
        self.digest = fnv_u64(self.digest, trace.latency);
        self.digest = fnv_u64(self.digest, trace.ordinal);
        for hop in &trace.hops {
            self.digest = fnv_u64(self.digest, hop.node);
            self.digest = fnv_u64(
                self.digest,
                (u64::from(hop.finger_level) << 1) | u64::from(hop.forged),
            );
            self.digest = fnv_u64(self.digest, hop.latency);
            self.digest = fnv_u64(self.digest, (u64::from(hop.attempt) << 2) | hop.tier.code());
        }
        self.digest = fnv_u64(
            self.digest,
            match trace.outcome {
                TraceOutcome::Resolved(n) => n.wrapping_mul(3),
                TraceOutcome::Captured(n) => n.wrapping_mul(3).wrapping_add(1),
                TraceOutcome::Unresolved => 2,
            },
        );
        self.recorded += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(trace);
    }

    pub(crate) fn traces(&self) -> Vec<LookupTrace> {
        self.buf.iter().cloned().collect()
    }

    pub(crate) fn recorded(&self) -> u64 {
        self.recorded
    }

    pub(crate) fn digest(&self) -> u64 {
        self.digest
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}

/// An exported bundle of retained traces, ready for rendering.
///
/// Obtained via [`TraceDump::from_recorder`]; render with
/// [`TraceDump::pretty`] (terminal) or
/// [`TraceDump::chrome_trace_json`] (`chrome://tracing` / Perfetto).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDump {
    /// Retained traces, oldest first.
    pub traces: Vec<LookupTrace>,
    /// FNV-1a digest over every trace ever recorded.
    pub digest: u64,
    /// Total traces ever recorded (≥ `traces.len()`).
    pub recorded: u64,
}

impl TraceDump {
    /// Snapshots the flight recorder of `recorder`.
    pub fn from_recorder(recorder: &crate::Recorder) -> TraceDump {
        TraceDump {
            traces: recorder.traces(),
            digest: recorder.trace_digest(),
            recorded: recorder.traces_recorded(),
        }
    }

    /// Renders the dump in Chrome `trace_event` JSON format: one complete
    /// ("ph":"X") event per lookup on tid 1 and one per hop on tid 2,
    /// laid end to end on a synthetic tick timeline. Deterministic for a
    /// given dump.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::new();
        let mut clock = 0u64;
        for (i, trace) in self.traces.iter().enumerate() {
            let outcome = match trace.outcome {
                TraceOutcome::Resolved(_) => "resolved",
                TraceOutcome::Captured(_) => "captured",
                TraceOutcome::Unresolved => "unresolved",
            };
            events.push(format!(
                concat!(
                    "{{\"name\":\"lookup {i} 0x{from:016x}->0x{target:016x}\",",
                    "\"cat\":\"lookup\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},",
                    "\"pid\":1,\"tid\":1,\"args\":{{\"hops\":{hops},",
                    "\"messages\":{msgs},\"outcome\":\"{outcome}\",",
                    "\"ordinal\":{ordinal}}}}}"
                ),
                i = i,
                from = trace.from,
                target = trace.target,
                ts = clock,
                dur = trace.latency.max(1),
                hops = trace.hops.len(),
                msgs = trace.messages,
                outcome = outcome,
                ordinal = trace.ordinal,
            ));
            let mut hop_clock = clock;
            for hop in &trace.hops {
                events.push(format!(
                    concat!(
                        "{{\"name\":\"hop->0x{node:016x}\",\"cat\":\"hop\",",
                        "\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,",
                        "\"tid\":2,\"args\":{{\"finger_level\":{level},",
                        "\"forged\":{forged},\"attempt\":{attempt},",
                        "\"tier\":\"{tier}\"}}}}"
                    ),
                    node = hop.node,
                    ts = hop_clock,
                    dur = hop.latency.max(1),
                    level = hop.finger_level,
                    forged = hop.forged,
                    attempt = hop.attempt,
                    tier = hop.tier.label(),
                ));
                hop_clock += hop.latency.max(1);
            }
            clock += trace.latency.max(1) + 1;
        }
        format!(
            concat!(
                "{{\"displayTimeUnit\":\"ms\",",
                "\"otherData\":{{\"digest\":\"{digest:016x}\",",
                "\"recorded\":{recorded}}},",
                "\"traceEvents\":[{events}]}}"
            ),
            digest = self.digest,
            recorded = self.recorded,
            events = events.join(","),
        )
    }

    /// Renders the dump as indented terminal text with per-hop
    /// attribution (`FORGED` marks coalition hops).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} trace(s) retained of {} recorded, digest {:016x}",
            self.traces.len(),
            self.recorded,
            self.digest
        );
        for (i, trace) in self.traces.iter().enumerate() {
            let outcome = match trace.outcome {
                TraceOutcome::Resolved(n) => format!("resolved(0x{n:016x})"),
                TraceOutcome::Captured(n) => format!("CAPTURED(0x{n:016x})"),
                TraceOutcome::Unresolved => "unresolved".to_owned(),
            };
            let _ = writeln!(
                out,
                "trace #{i} (op {}): 0x{:016x} -> 0x{:016x}  {outcome}  hops={} msgs={} latency={}",
                trace.ordinal,
                trace.from,
                trace.target,
                trace.hops.len(),
                trace.messages,
                trace.latency
            );
            for (h, hop) in trace.hops.iter().enumerate() {
                let degraded = match (hop.attempt, hop.tier) {
                    (0, FallbackTier::Direct) => String::new(),
                    (a, FallbackTier::Direct) => format!(" retry={a}"),
                    (a, tier) => format!(" retry={a} tier={}", tier.label()),
                };
                let _ = writeln!(
                    out,
                    "  hop {:>2}: -> 0x{:016x}  level={:<2} latency={:<6} {}{degraded}",
                    h + 1,
                    hop.node,
                    hop.finger_level,
                    hop.latency,
                    if hop.forged { "FORGED" } else { "honest" }
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dump() -> TraceDump {
        TraceDump {
            traces: vec![LookupTrace {
                from: 0x10,
                target: 0x20,
                hops: vec![
                    HopRecord {
                        node: 0x30,
                        finger_level: 17,
                        forged: false,
                        latency: 3,
                        attempt: 0,
                        tier: FallbackTier::Direct,
                    },
                    HopRecord {
                        node: 0x40,
                        finger_level: 4,
                        forged: true,
                        latency: 2,
                        attempt: 2,
                        tier: FallbackTier::Walk,
                    },
                ],
                outcome: TraceOutcome::Captured(0x40),
                messages: 3,
                latency: 5,
                ordinal: 7,
            }],
            digest: 0xdead_beef,
            recorded: 9,
        }
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let json = sample_dump().chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"finger_level\":17"));
        assert!(json.contains("\"forged\":true"));
        assert!(json.contains("\"outcome\":\"captured\""));
        assert!(json.contains("\"ordinal\":7"));
        assert!(json.contains("\"attempt\":2"));
        assert!(json.contains("\"tier\":\"walk\""));
        assert!(json.contains("\"tier\":\"direct\""));
        // Balanced braces/brackets — cheap structural sanity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn pretty_shows_attribution() {
        let text = sample_dump().pretty();
        assert!(text.contains("CAPTURED"));
        assert!(text.contains("FORGED"));
        assert!(text.contains("honest"));
        assert!(text.contains("digest 00000000deadbeef"));
        assert!(text.contains("(op 7)"));
        assert!(text.contains("retry=2 tier=walk"));
        // First-try direct hops carry no degradation annotation.
        let first_hop = text.lines().find(|l| l.contains("hop  1")).unwrap();
        assert!(!first_hop.contains("retry"));
    }

    #[test]
    fn digest_covers_degradation_annotations_and_ordinal() {
        let base = sample_dump().traces[0].clone();
        let mut retried = base.clone();
        retried.hops[0].attempt = 1;
        let mut quorum = base.clone();
        quorum.hops[1].tier = FallbackTier::Quorum;
        let mut renumbered = base.clone();
        renumbered.ordinal = 8;
        let digest_of = |t: &LookupTrace| {
            let mut fr = FlightRecorder::new(4);
            fr.push(t.clone());
            fr.digest()
        };
        let d = digest_of(&base);
        assert_ne!(d, digest_of(&retried));
        assert_ne!(d, digest_of(&quorum));
        assert_ne!(d, digest_of(&renumbered));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let t1 = LookupTrace {
            from: 1,
            target: 2,
            hops: vec![],
            outcome: TraceOutcome::Unresolved,
            messages: 0,
            latency: 0,
            ordinal: 0,
        };
        let t2 = LookupTrace {
            from: 3,
            ..t1.clone()
        };
        let mut a = FlightRecorder::new(8);
        a.push(t1.clone());
        a.push(t2.clone());
        let mut b = FlightRecorder::new(8);
        b.push(t2);
        b.push(t1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn empty_dump_renders() {
        let dump = TraceDump {
            traces: vec![],
            digest: FlightRecorder::new(1).digest(),
            recorded: 0,
        };
        assert!(dump.chrome_trace_json().contains("\"traceEvents\":[]"));
        assert!(dump.pretty().contains("0 trace(s)"));
    }
}
