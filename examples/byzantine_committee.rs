//! Byzantine committee election (§1 motivation, Lewis–Saia [8]).
//!
//! A scalable Byzantine agreement protocol elects committees by random
//! sampling and needs Byzantine members to stay below a majority. An
//! *adaptive* adversary corrupts the peers the sampler favours most: with
//! uniform sampling that buys nothing (every set of the same size is
//! equal), but against the naive heuristic it captures almost every
//! committee.
//!
//! Run with: `cargo run --release --example byzantine_committee`

use apps::committee;
use baselines::{KingSaiaIndexSampler, NaiveSampler};
use keyspace::{KeySpace, SortedRing};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let n = 600;
    let byz_fraction = 1.0 / 3.0;
    let space = KeySpace::full();
    let ring = SortedRing::new(space, space.random_points(&mut rng, n));
    let naive = NaiveSampler::new(ring.clone());

    println!(
        "{n} peers, adversary corrupts {:.0}% adaptively, 2000 elections per row\n",
        byz_fraction * 100.0
    );
    println!(
        "{:<10} {:<22} {:>14} {:>18}",
        "committee", "sampler", "capture rate", "mean byz fraction"
    );

    for committee_size in [11usize, 31, 61, 101] {
        // Uniform sampler: the adversary gains nothing from adaptivity.
        let uniform_byz = committee::adaptive_byzantine_set(&vec![1.0 / n as f64; n], byz_fraction);
        let ks = KingSaiaIndexSampler::from_ring(ring.clone());
        let report_ks =
            committee::simulate_elections(&ks, &uniform_byz, committee_size, 2000, &mut rng);
        // Naive sampler: the adversary corrupts the longest-arc peers.
        let naive_byz =
            committee::adaptive_byzantine_set(&naive.selection_probabilities(), byz_fraction);
        let report_naive =
            committee::simulate_elections(&naive, &naive_byz, committee_size, 2000, &mut rng);
        println!(
            "{:<10} {:<22} {:>14.4} {:>18.3}",
            committee_size, "king-saia", report_ks.capture_rate, report_ks.mean_byzantine_fraction
        );
        println!(
            "{:<10} {:<22} {:>14.4} {:>18.3}",
            "", "naive h(s)", report_naive.capture_rate, report_naive.mean_byzantine_fraction
        );
    }
    println!("\nuniform sampling drives capture probability to zero exponentially in c;");
    println!("the biased sampler hands the adversary a majority at every size.");
}
