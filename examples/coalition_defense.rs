//! Coalition attack → measured bias → defense → restored safety, in one
//! terminal session.
//!
//! Runs each coalition strategy against a Chord overlay twice — once with
//! the paper's plain sampler, once behind the quorum-verified
//! `DefendedSampler` — and prints the Byzantine sample share, the
//! chi-square uniformity verdict, the committee-capture risk, and what
//! the defense costs in messages per accepted draw.
//!
//! ```text
//! cargo run --release --example coalition_defense
//! ```

use scenarios::{run_scenario_seed, Backend, CoalitionStrategySpec, ScenarioSpec, COMMITTEE_SIZE};

fn main() {
    println!(
        "coalition attacks on King-Saia sampling (n = 256, b = 10%, committee = {COMMITTEE_SIZE})\n"
    );
    println!(
        "{:<20} {:>9} {:>10} {:>10} {:>12} {:>11} {:>10}",
        "strategy", "arm", "byz_pop", "byz_share", "chi_sq_p", "capture_p", "msgs/draw"
    );
    for strategy in CoalitionStrategySpec::all() {
        for defended in [false, true] {
            let mut spec = ScenarioSpec::preset_coalition(strategy, 0.10);
            if defended {
                spec = spec.with_defense(3);
            }
            let r = run_scenario_seed(&spec, Backend::Chord, 2004);
            println!(
                "{:<20} {:>9} {:>10.3} {:>10.3} {:>12.2e} {:>11.2e} {:>10.1}",
                strategy.name(),
                if defended { "defended" } else { "attack" },
                r.byzantine_population_share,
                r.byzantine_sample_share,
                r.chi_square_p,
                r.committee_capture_p,
                r.mean_messages,
            );
        }
    }
    println!(
        "\nundefended arms fail uniformity (p ~ 0) and flood committees; the defense \
         restores both at ~10x the message cost — the price of not trusting anyone."
    );
}
