//! Data collection by peer polling (§1 motivation).
//!
//! Estimates what fraction of peers hold an attribute by polling sampled
//! peers. When the attribute correlates with ring-arc length — anything
//! entangled with key placement does — the naive `h(s)` heuristic's
//! estimate is wildly off while the King–Saia sampler stays unbiased.
//!
//! Run with: `cargo run --release --example data_collection`

use apps::polling;
use baselines::{IndexSampler, KingSaiaIndexSampler, NaiveSampler};
use keyspace::{KeySpace, SortedRing};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let n = 500;
    let space = KeySpace::full();
    let ring = SortedRing::new(space, space.random_points(&mut rng, n));

    // 30% of peers hold the attribute — the 30% with the longest arcs,
    // the worst case for a biased pollster.
    let attribute = polling::arc_correlated_attribute(&ring, 0.30);
    println!("population: {n} peers, true attribute fraction 0.300\n");

    let samplers: Vec<(&str, Box<dyn IndexSampler>)> = vec![
        (
            "king-saia (uniform)",
            Box::new(KingSaiaIndexSampler::from_ring(ring.clone())),
        ),
        ("naive h(s) (biased)", Box::new(NaiveSampler::new(ring))),
    ];
    for (name, sampler) in &samplers {
        let result = polling::poll(sampler.as_ref(), &attribute, 20_000, &mut rng);
        println!(
            "{name:<22} estimate {:.3}  (error {:+.3})",
            result.estimate,
            result.error()
        );
    }
    println!("\nthe biased sampler more than doubles the measured fraction:");
    println!("long-arc peers are exactly the ones h(s) lands on most often.");
}
