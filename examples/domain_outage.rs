//! A correlated rack outage, end to end: domain crash, attributed SLO
//! breach, adaptive re-route holding lookups through the outage, heal
//! and confirmed recovery.
//!
//! The scene: a converged 96-peer chord ring whose keyspace is cut into
//! 8 rack-sized failure domains ([`simnet::DomainMap`]). Racks 0 and 1 —
//! a quarter of the ring, as one contiguous arc — crash as a unit.
//! Plain routing loses every lookup whose target lands in the dead arc
//! and the watchdog's `success_ratio` rule breaches, *attributed to the
//! downed rack labels*. Arming adaptive peer scoring plus the
//! retry/fallback policy restores the SLO while the racks are still
//! down: lookups degrade (retries, successor-walk, verified-quorum)
//! instead of failing, and the extra cost lands in `lookup.retries` /
//! `lookup.fallback_depth`. The racks then rejoin, batched maintenance
//! drains the backlog, and the final window confirms recovery — the
//! same arc the e16 `domain-outage-*` battery gates.
//!
//! ```text
//! cargo run --release --example domain_outage
//! ```

use chord::watchdog::gauge;
use chord::{
    AdaptiveConfig, ChordConfig, ChordNetwork, FaultPlan, LookupOutcomes, MaintenanceBudget,
    NodeId, RetryPolicy, SloConfig, Watchdog,
};
use keyspace::{KeySpace, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::DomainMap;

/// The racks that go down together (one contiguous quarter of the ring).
const DOWN_RACKS: [u32; 2] = [0, 1];

fn main() {
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(2004);
    let mut net = ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, 96),
        ChordConfig::default(),
    );
    let racks = DomainMap::sectors(8, space.modulus());
    let config = SloConfig::default();
    println!(
        "watchdog SLO: lookup success ratio >= {}, defect fraction <= {}\n",
        config.min_success_ratio, config.max_staleness,
    );
    let mut watchdog = Watchdog::new(config, 0x57A7_D065);

    // The measuring anchor lives in rack 7, far from the blast radius.
    let anchor = *net
        .live_ids()
        .iter()
        .find(|&&id| racks.domain_of(net.node(id).point().get()) == 7)
        .expect("rack 7 is populated");
    let targets = space.random_points(&mut rng, 500);

    // Window 0 — converged baseline: every lookup resolves first try.
    let outcomes = run_draws(&net, anchor, &targets, &mut rng, &[]);
    observe(&mut watchdog, &net, &outcomes, "converged ring");

    // Racks 0 and 1 crash as a unit between windows.
    let victims: Vec<NodeId> = net
        .live_ids()
        .into_iter()
        .filter(|&id| DOWN_RACKS.contains(&racks.domain_of(net.node(id).point().get())))
        .collect();
    let dead_points: Vec<Point> = victims.iter().map(|&id| net.node(id).point()).collect();
    for &v in &victims {
        net.crash(v);
    }
    println!(
        "\nracks {DOWN_RACKS:?} down: {} of 96 nodes crashed as one arc",
        victims.len()
    );

    // Window 1 — plain routing: lookups into the dead arc fail outright
    // and the breach is pinned on the downed rack labels.
    let outcomes = run_draws(&net, anchor, &targets, &mut rng, &DOWN_RACKS);
    observe(&mut watchdog, &net, &outcomes, "outage, plain routing");

    // Adaptive scoring + retry/fallback arm between windows — nothing
    // about the outage changes, only how lookups respond to it.
    net.enable_adaptive_routing(AdaptiveConfig::default());
    net.enable_retry_policy(RetryPolicy::default());

    // Window 2 — same dead racks, adaptive routing: every lookup still
    // resolves (degraded, never wrong), so the success SLO recovers
    // while the outage is still in progress.
    let outcomes = run_draws(&net, anchor, &targets, &mut rng, &DOWN_RACKS);
    observe(&mut watchdog, &net, &outcomes, "outage, adaptive routing");
    println!(
        "  degradation cost: {} retries, {} summed fallback depth, {} dead probes",
        net.metrics().get("lookup.retries"),
        net.metrics().get("lookup.fallback_depth"),
        net.metrics().get("lookup.dead_probe"),
    );

    // The racks heal: every lost point rejoins through the anchor. Two
    // passes with a maintenance drain between them, because routing *to*
    // a dead-arc point dies at the pre-arc node's all-dead successor
    // list — pass 1's drain re-stitches the ring past the arc, pass 2's
    // joins then land. Successor-list correctness propagates backwards
    // one node per round, so each drain gets Θ(arc) rounds.
    let mut rejoined = 0usize;
    let mut rounds = 0u32;
    let mut pending = dead_points.clone();
    let drain_cap = 8 + 2 * pending.len();
    for _pass in 0..2 {
        pending.retain(|&p| net.join(p, anchor, &mut rng).is_err());
        for _ in 0..drain_cap {
            if net.maintenance_backlog() == 0 {
                break;
            }
            net.batched_maintenance_round(MaintenanceBudget::unlimited(), &mut rng);
            rounds += 1;
        }
        rejoined = dead_points.len() - pending.len();
        if pending.is_empty() {
            break;
        }
    }
    println!(
        "\nheal: {rejoined}/{} nodes rejoined, backlog drained in {rounds} rounds",
        dead_points.len()
    );

    // Window 3 — healed ring, outage over: all rules back in bound.
    let outcomes = run_draws(&net, anchor, &targets, &mut rng, &[]);
    observe(&mut watchdog, &net, &outcomes, "healed ring");

    println!("\nhealth log:");
    for event in watchdog.events() {
        println!("  {}", event.render());
    }
    println!(
        "\nverdict: {} windows, {} breach edge(s), time-to-detect {} window(s), \
         time-to-recover {} window(s), healthy at end: {}",
        watchdog.windows_observed(),
        watchdog.breaches(),
        watchdog.time_to_detect(),
        watchdog.time_to_recover(),
        watchdog.healthy(),
    );
    assert!(watchdog.healthy(), "heal + drain must restore every SLO");
    assert_eq!(
        watchdog.time_to_detect(),
        1,
        "the outage is detected the window it lands"
    );
}

/// One window's worth of lookups from `anchor`, tallied for the
/// success-ratio rule; the downed rack labels ride along as the breach
/// attribution payload.
fn run_draws(
    net: &ChordNetwork,
    anchor: NodeId,
    targets: &[Point],
    rng: &mut StdRng,
    down_racks: &[u32],
) -> LookupOutcomes {
    let mut outcomes = LookupOutcomes {
        suspects: down_racks.iter().map(|&d| u64::from(d)).collect(),
        ..LookupOutcomes::default()
    };
    for &t in targets {
        match net.find_successor_with_policy(anchor, t, &FaultPlan::none(), rng) {
            Ok(_) => outcomes.ok += 1,
            Err(_) => outcomes.failed += 1,
        }
    }
    outcomes
}

/// Closes the recorder window, feeds the watchdog, prints the result.
fn observe(watchdog: &mut Watchdog, net: &ChordNetwork, outcomes: &LookupOutcomes, label: &str) {
    let window = net.metrics().recorder().reset_window();
    watchdog.observe_with_outcomes(net, window, None, Some(outcomes));
    let series = watchdog.series();
    let last = |name: &str| {
        series
            .gauge_column(name)
            .last()
            .copied()
            .unwrap_or(f64::NAN)
    };
    println!(
        "w{}: {label}: live {:.0}, success ratio {:.3}, defect fraction {:.3} ({})",
        watchdog.windows_observed() - 1,
        last(gauge::LIVE),
        outcomes.ratio(),
        last(gauge::DEFECT_RATE),
        if watchdog.healthy() {
            "healthy"
        } else {
            "BREACHED"
        },
    );
}
