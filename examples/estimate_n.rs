//! Network-size estimation (§2 "Estimate n") across probe budgets.
//!
//! Shows the estimator's accuracy/cost trade-off: the probe multiplier
//! `c₁` controls how many `next` probes are spent, and the estimate
//! tightens accordingly — always within Lemma 3's `(2/7, 6)` band.
//!
//! Run with: `cargo run --release --example estimate_n`

use keyspace::{KeySpace, SortedRing};
use peer_sampling::{NetworkSizeEstimator, OracleDht};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let space = KeySpace::full();

    for n in [100usize, 1_000, 10_000] {
        let ring = SortedRing::new(space, space.random_points(&mut rng, n));
        let dht = OracleDht::new(ring);
        println!("true n = {n}");
        for c1 in [2.0, 8.0, 32.0] {
            let estimator = NetworkSizeEstimator::new(c1);
            // Average over 20 starting peers, as different peers see
            // different local arc densities.
            let mut total = 0.0;
            let mut probes = 0u64;
            let origins = 20.min(n);
            for origin in (0..n).step_by(n / origins) {
                let est = estimator.estimate(&dht, origin)?;
                total += est.n_hat;
                probes += est.probes;
            }
            let mean = total / origins as f64;
            println!(
                "  c1 = {c1:>4}: mean estimate {:>8.0} (ratio {:>5.2}), {:>4} probes/peer",
                mean,
                mean / n as f64,
                probes / origins as u64
            );
        }
        println!();
    }
    println!("Lemma 3 guarantees every estimate falls in ((2/7)n, 6n) w.h.p.");
    Ok(())
}
