//! The health watchdog catching a crash burst and confirming the repair:
//! breach, attributed alert, batched maintenance drain, recovery.
//!
//! The scene: a converged 96-peer chord ring with a [`chord::Watchdog`]
//! attached. A quarter of the ring crashes at once; the next observation
//! window spot-checks the ring, finds most sampled nodes defective
//! (wrong first-live successor, stale predecessor, or stale fingers) and
//! raises an attributed `staleness` breach naming offender nodes. Batched
//! maintenance then drains the dirty backlog, and the following window
//! confirms the ring repaired — the watchdog logs the recovery edge and
//! reports time-to-detect / time-to-recover, the same columns the e16
//! crash-churn and scale verdicts gate on.
//!
//! ```text
//! cargo run --release --example health_watch
//! ```

use chord::watchdog::gauge;
use chord::{ChordConfig, ChordNetwork, MaintenanceBudget, SloConfig, Watchdog};
use keyspace::KeySpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A converged 96-peer ring: bootstrap builds correct successors,
    // predecessors and fingers, so window 0 must read healthy.
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(2004);
    let mut net = ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, 96),
        ChordConfig::default(),
    );
    let config = SloConfig::default();
    println!(
        "watchdog SLO: hop_p99 <= {}*log2(live)+{}, defect fraction <= {}, chi alpha {:e}\n",
        config.hop_p99_factor, config.hop_p99_slack, config.max_staleness, config.chi_alpha,
    );
    let mut watchdog = Watchdog::new(config, 0x57A7_D065);

    // Window 0 — converged baseline.
    let window = net.metrics().recorder().reset_window();
    watchdog.observe(&net, window, None);
    report(&watchdog, "converged ring");

    // A quarter of the ring crashes between windows.
    let victims: Vec<_> = net.live_ids().into_iter().step_by(4).take(24).collect();
    for &v in &victims {
        net.crash(v);
    }
    let window = net.metrics().recorder().reset_window();
    watchdog.observe(&net, window, None);
    report(&watchdog, "after 24/96 crash burst");

    // Batched maintenance drains the crash-burst dirty set (a classic
    // round fixes one finger bit ring-wide; the drain repairs exactly the
    // entries the crashes dirtied).
    let mut rounds = 0u32;
    let mut lookups = 0u64;
    while net.maintenance_backlog() > 0 {
        let work = net.batched_maintenance_round(MaintenanceBudget::unlimited(), &mut rng);
        lookups += work.lookups;
        rounds += 1;
    }
    println!("batched drain: backlog emptied in {rounds} rounds / {lookups} lookups\n");

    let window = net.metrics().recorder().reset_window();
    watchdog.observe(&net, window, None);
    report(&watchdog, "after batched drain");

    println!("health log:");
    for event in watchdog.events() {
        println!("  {}", event.render());
    }
    println!(
        "\nverdict: {} windows, {} breach edge(s), time-to-detect {} window(s), \
         time-to-recover {} window(s), healthy at end: {}",
        watchdog.windows_observed(),
        watchdog.breaches(),
        watchdog.time_to_detect(),
        watchdog.time_to_recover(),
        watchdog.healthy(),
    );
    assert!(watchdog.healthy(), "drain must restore the ring");
    assert_eq!(
        watchdog.time_to_detect(),
        1,
        "burst detected the window after it lands"
    );
}

/// Prints the latest window's gauges and health state.
fn report(watchdog: &Watchdog, label: &str) {
    let series = watchdog.series();
    let last = |name: &str| {
        series
            .gauge_column(name)
            .last()
            .copied()
            .unwrap_or(f64::NAN)
    };
    println!(
        "w{}: {label}: live {:.0}, defect fraction {:.3} ({}), finger staleness {:.3}, \
         dirty backlog {:.0}",
        watchdog.windows_observed() - 1,
        last(gauge::LIVE),
        last(gauge::DEFECT_RATE),
        if watchdog.healthy() {
            "healthy"
        } else {
            "BREACHED"
        },
        last(gauge::STALENESS),
        last(gauge::BACKLOG),
    );
}
