//! Quickstart: choose uniform random peers from a Chord DHT.
//!
//! Builds a 1000-node Chord overlay, estimates the network size from one
//! peer using only DHT primitives (§2), then draws uniform random peers
//! (§3) and prints the per-draw cost — the paper's full pipeline.
//!
//! Run with: `cargo run --release --example quickstart`

use chord::{ChordConfig, ChordDht, ChordNetwork};
use keyspace::KeySpace;
use peer_sampling::{NetworkSizeEstimator, Sampler};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2004);
    let n = 1000;

    // A converged Chord ring with n peers placed uniformly at random.
    let space = KeySpace::full();
    let net = ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, n),
        ChordConfig::default(),
    );
    println!("built a Chord overlay with {} live peers", net.live_len());

    // The peer "running" the algorithm sees the DHT through h/next only.
    let anchor = net.live_ids()[0];
    let dht = ChordDht::new(&net, anchor, 7);

    // Step 1 — estimate n (the peer does not know it).
    let estimate = NetworkSizeEstimator::default().estimate(&dht, anchor)?;
    println!(
        "estimated n = {:.0} (true {n}) using {} next-probes, {}",
        estimate.n_hat, estimate.probes, estimate.cost
    );

    // Step 2 — sample uniform random peers.
    let sampler = Sampler::new(estimate.to_sampler_config());
    println!("\ndrawing 10 uniform random peers:");
    for i in 1..=10 {
        let sample = sampler.sample(&dht, &mut rng)?;
        println!(
            "  #{i}: peer {} at ring point {} ({} trials, {})",
            sample.peer, sample.point, sample.trials, sample.cost
        );
    }
    Ok(())
}
