//! Random-link overlays under adversarial node deletion (§1 motivation).
//!
//! Every node draws 6 links through a sampler; an adversary then deletes
//! the highest-degree fraction of nodes. Uniform links keep the survivors
//! connected (expander-style robustness [11]); biased links concentrate on
//! few hubs and shatter.
//!
//! Run with: `cargo run --release --example random_links`

use apps::links::{self, DeletionStrategy};
use baselines::{IndexSampler, KingSaiaIndexSampler, NaiveSampler};
use keyspace::{KeySpace, SortedRing};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let n = 500;
    let degree = 6;
    let space = KeySpace::full();
    let ring = SortedRing::new(space, space.random_points(&mut rng, n));
    let fractions = [0.1, 0.2, 0.3, 0.4, 0.5];

    println!("{n}-node overlays, {degree} links/node, adversarial (highest-degree) deletion\n");
    println!("{:<22} largest surviving component fraction", "sampler");
    println!(
        "{:<22} {}",
        "",
        fractions
            .iter()
            .map(|f| format!("del={f:.1}"))
            .collect::<Vec<_>>()
            .join("   ")
    );

    let samplers: Vec<(&str, Box<dyn IndexSampler>)> = vec![
        (
            "king-saia (uniform)",
            Box::new(KingSaiaIndexSampler::from_ring(ring.clone())),
        ),
        ("naive h(s) (biased)", Box::new(NaiveSampler::new(ring))),
    ];
    for (name, sampler) in &samplers {
        let overlay = links::build_overlay(sampler.as_ref(), degree, &mut rng);
        let curve = links::robustness_curve(
            &overlay,
            &fractions,
            DeletionStrategy::HighestDegree,
            &mut rng,
        );
        let cells: Vec<String> = curve
            .iter()
            .map(|p| format!("{:.3}", p.survivor_connectivity))
            .collect();
        println!("{name:<22} {}", cells.join("   "));
    }
    println!("\nuniform random links stay near 1.0; biased links collapse past 30% deletion.");
}
