//! A small adversarial sweep: three scenario presets × 8 seeds × both DHT
//! backends, printed as the structured JSON report.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! cargo run --release --example scenario_sweep -- --summary   # table only
//! ```
//!
//! The same spec runs against the oracle (ideal DHT) and Chord (real
//! routing), under one shared placement/churn stream per seed, so every
//! per-seed pair is a direct cost-vs-correctness comparison.

use scenarios::{ScenarioSpec, Sweep};

fn main() {
    let summary_only = std::env::args().any(|a| a == "--summary");

    // Three contrasting presets, scaled down so the example runs in
    // seconds: the honest control, crash-heavy churn, and the Byzantine
    // capture attack.
    let mut specs = vec![
        ScenarioSpec::preset_honest_static(),
        ScenarioSpec::preset_crash_churn(),
        ScenarioSpec::preset_byzantine_routers(),
    ];
    for spec in &mut specs {
        spec.n_initial = 128;
        spec.workload.draws = 1_000;
    }

    let report = Sweep::new(specs).with_seeds(8).run();

    if summary_only {
        eprintln!(
            "scenario x backend aggregates ({} seeds each):",
            report.seeds_per_scenario
        );
        for scenario in &report.scenarios {
            for agg in &scenario.aggregates {
                eprintln!(
                    "  {:>18} {:>7}  live {:>6.1}  fail {:.3}  msgs/draw {:>7.2}  \
                     tv {:.3}  byz {:.3}->{:.3}",
                    scenario.spec.name,
                    agg.backend,
                    agg.live_peers_mean,
                    agg.fail_rate_mean,
                    agg.messages_mean,
                    agg.tv_mean,
                    agg.byzantine_population_share_mean,
                    agg.byzantine_sample_share_mean,
                );
            }
        }
    } else {
        // The full machine-readable report: specs ride inside it, so the
        // JSON alone reproduces the run (master seed included).
        println!("{}", report.to_json_pretty());
    }
}
