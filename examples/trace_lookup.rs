//! One defended draw on a sybil-seized ring, with the hop-level flight
//! recorder switched on: every `find_successor` walk the quorum round
//! issued, hop by hop, with honest-vs-forged attribution per hop.
//!
//! The scene: a 64-peer honest ring, seized by a `SybilArcCapture`
//! coalition (sybils squat the largest gap-arcs and forge their reported
//! positions). An honest client then draws one peer through the
//! quorum-verified `DefendedSampler` over 3 disjoint-entry views. With
//! `Recorder::set_tracing(true)`, each routed lookup leaves a full trace
//! in the telemetry flight recorder — the same machinery `RP_TRACE=<path>`
//! uses to export Chrome `trace_event` files from e16 runs.
//!
//! ```text
//! cargo run --release --example trace_lookup
//! ```

use adversary::{compile_coalition, sybil_ids, CoalitionStrategy, DefendedSampler};
use chord::{ChordConfig, ChordDht, ChordNetwork, FaultPlan};
use keyspace::KeySpace;
use peer_sampling::SamplerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scenarios::{place_index, PlacementModel};
use telemetry::TraceDump;

fn main() {
    // A 64-peer uniform honest ring, then the coalition compiles its
    // placement against it: 7 sybils (~10% of the final population) seize
    // the largest gap-arcs.
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(2004);
    let members = place_index(&PlacementModel::Uniform, space, 64, &mut rng);
    let coalition = compile_coalition(CoalitionStrategy::SybilArcCapture, &members, 7);
    let mut points = members.points();
    points.extend(coalition.sybil_points.iter().copied());
    let net = ChordNetwork::bootstrap(space, points, ChordConfig::default());

    // Resolve sybil points to overlay ids and compile their forged
    // behaviour into a fault plan; the measuring client stays honest.
    let sybils = sybil_ids(&net, &coalition.sybil_points);
    let plan = FaultPlan::with_behavior(sybils.iter().copied(), coalition.behavior);
    let anchor = net
        .live_ids()
        .into_iter()
        .find(|id| !sybils.contains(id))
        .expect("a 10% coalition leaves honest peers");

    // Flight recorder on: every routed lookup from here records its hop
    // path. Tracing perturbs nothing — no RNG draws, no cost — so the
    // draw below is identical with or without it.
    let recorder = net.metrics().recorder();
    recorder.set_trace_capacity(64);
    recorder.set_tracing(true);

    // One defended draw: 3 disjoint-entry verified views, strict majority.
    let views = adversary::spread_verified_views(&net, anchor, &plan, 3, 77);
    let view_refs: Vec<&ChordDht> = views.iter().collect();
    let sampler = DefendedSampler::new(SamplerConfig::new(net.live_len() as u64));
    let mut draw_rng = StdRng::seed_from_u64(42);
    let sample = sampler
        .sample(&view_refs, &mut draw_rng)
        .expect("defended draw resolves");

    println!(
        "ring: {} peers ({} sybils squatting gap-arcs); client: honest node {anchor:?}",
        net.live_len(),
        sybils.len()
    );
    println!(
        "defended draw: peer {:?} at 0x{:016x} in {} trials, {} messages / {} latency ticks, \
         {} quorum disagreements\n",
        sample.peer,
        sample.point.get(),
        sample.trials,
        sample.cost.messages,
        sample.cost.latency,
        sample.quorum_failures,
    );

    // The flight recorder holds every lookup the quorum round issued.
    let dump = TraceDump::from_recorder(recorder);
    let forged_hops: usize = dump
        .traces
        .iter()
        .flat_map(|t| &t.hops)
        .filter(|h| h.forged)
        .count();
    let total_hops: usize = dump.traces.iter().map(|t| t.hops.len()).sum();
    println!("{}", dump.pretty());
    println!(
        "{} lookups traced ({} retained), {total_hops} hops, {forged_hops} through coalition \
         nodes; the quorum round cross-checks the disagreeing answers away.",
        dump.recorded,
        dump.traces.len()
    );
}
