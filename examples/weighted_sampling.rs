//! Biased peer selection — the paper's open problem 3, implemented.
//!
//! §4 asks for peers chosen "with probability that is inversely
//! proportional to its distance from us on the unit circle". The weighted
//! generalization of Figure 1 does this exactly: each peer gets a locally
//! computable measure `λ(p)`, and the scan's telescoping argument still
//! hands every peer exactly its `λ(p)` of the ring — any deterministic
//! point-computable bias works, not just uniform.
//!
//! Run with: `cargo run --release --example weighted_sampling`

use keyspace::{KeySpace, Point, SortedRing};
use peer_sampling::weighted::{InverseDistanceWeight, WeightedSampler};
use peer_sampling::OracleDht;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(404);
    let n = 300u64;
    let space = KeySpace::full();
    let ring = SortedRing::new(space, space.random_points(&mut rng, n as usize));

    // "Us": the peer at rank 0. Any closure over the peer's point is a
    // weight function; here a smoothed inverse distance
    //     λ(p) = B / (M/16 + d(origin, p))
    // (the un-smoothed 1/d of the paper's text also works — see
    // `InverseDistanceWeight` — but it concentrates nearly all mass on
    // the closest peers, which makes for a dull histogram).
    let origin = ring.point(0);
    let m = space.modulus();
    let budget = m / 7; // total demanded measure ≈ M/7, like Figure 1
    let per_peer_budget = budget / n as u128;
    let weight = move |p: Point| {
        let d = space.distance(origin, p).to_u128();
        (per_peer_budget * m / (m / 16 + d) / 4) as u64
    };

    let dht = OracleDht::new(ring.clone());
    let sampler = WeightedSampler::new(256, 8192);

    // Draw a lot of peers and bucket them by distance from the origin.
    let draws = 50_000;
    let mut buckets = [0u64; 8];
    let mut trials = 0u64;
    for _ in 0..draws {
        let sample = sampler.sample(&dht, &weight, &mut rng)?;
        trials += sample.trials as u64;
        let d = space.distance(origin, sample.point).to_u128();
        let bucket = ((d * 8) / m).min(7) as usize;
        buckets[bucket] += 1;
    }

    println!("{draws} draws biased by lambda(p) ~ 1/(M/16 + d(origin, p)):\n");
    println!("{:<22} {:>8}  share", "distance from origin", "draws");
    for (i, &count) in buckets.iter().enumerate() {
        let share = count as f64 / draws as f64;
        let bar = "#".repeat((share * 80.0).round() as usize);
        println!(
            "{:<22} {count:>8}  {share:>6.3} {bar}",
            format!("{}/8 .. {}/8 of ring", i, i + 1)
        );
    }
    println!(
        "\nmean trials per draw: {:.1}",
        trials as f64 / draws as f64
    );

    // The distribution is not a heuristic: every peer's selection
    // probability is exactly λ(p)/Σλ. Check one peer empirically.
    let lambdas: Vec<u64> = (0..n as usize).map(|r| weight(ring.point(r))).collect();
    let total: u128 = lambdas.iter().map(|&l| l as u128).sum();
    println!(
        "nearest peer's exact model probability: {:.4}",
        lambdas[1] as f64 / total as f64
    );

    // The paper's literal 1/d bias is available off the shelf:
    let literal = InverseDistanceWeight::new(
        space,
        origin,
        InverseDistanceWeight::suggested_scale(space, n),
    );
    let s = sampler.sample(&dht, &literal, &mut rng)?;
    println!(
        "one draw from the literal 1/d bias: peer at distance {:.4} of the ring",
        space.fraction(space.distance(origin, s.point))
    );
    Ok(())
}
