//! Property-based tests for the Chord substrate: arbitrary membership
//! operation sequences must leave a repairable, correctly routing ring.

use chord::{ChordConfig, ChordNetwork};
use keyspace::KeySpace;
use proptest::prelude::*;
use rand::SeedableRng;

/// A membership operation applied to the overlay.
#[derive(Debug, Clone, Copy)]
enum Op {
    Join(u64),
    Leave(usize),
    Crash(usize),
    Maintain,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u64>().prop_map(Op::Join),
        (0usize..64).prop_map(Op::Leave),
        (0usize..64).prop_map(Op::Crash),
        Just(Op::Maintain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any operation sequence (with enough survivors) leaves a ring that
    /// converges back to correct successors/predecessors and routes every
    /// lookup to the ground-truth owner.
    #[test]
    fn arbitrary_membership_sequences_remain_repairable(
        seed in any::<u64>(),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut rng, 24),
            ChordConfig::default(),
        );
        for op in ops {
            match op {
                Op::Join(raw) => {
                    let live = net.live_ids();
                    let via = live[raw as usize % live.len()];
                    let point = space.random_point(&mut rng);
                    // Joins may legitimately fail mid-churn; ignore.
                    let _ = net.join(point, via, &mut rng);
                }
                Op::Leave(idx) => {
                    let live = net.live_ids();
                    // Keep a quorum so the ring stays repairable: the
                    // successor-list length bounds tolerable failures.
                    if live.len() > 8 {
                        net.leave(live[idx % live.len()]);
                    }
                }
                Op::Crash(idx) => {
                    let live = net.live_ids();
                    if live.len() > 8 {
                        net.crash(live[idx % live.len()]);
                    }
                }
                Op::Maintain => {
                    net.maintenance_round(0, &mut rng);
                }
            }
        }

        // Repair fully, then demand exact convergence and routing.
        for _ in 0..4 {
            net.converge(&mut rng);
        }
        let report = net.verify_ring();
        prop_assert!(report.is_converged(), "not converged: {:?}", report);

        let start = net.live_ids()[0];
        for _ in 0..16 {
            let target = space.random_point(&mut rng);
            let hit = net.find_successor(start, target, &mut rng)
                .expect("converged ring routes");
            prop_assert_eq!(hit.point, net.ground_truth_successor(target));
        }
    }

    /// The storage invariant survives arbitrary crash patterns: with
    /// replication 3 and repair, data outlives any single crash per
    /// round.
    #[test]
    fn storage_survives_arbitrary_single_crashes(
        seed in any::<u64>(),
        crash_picks in proptest::collection::vec(0usize..64, 1..6),
    ) {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut rng, 32),
            ChordConfig::default(),
        );
        let gateway = net.live_ids()[0];
        let key = space.random_point(&mut rng);
        net.put(gateway, key, b"invariant".to_vec(), 3, &mut rng).expect("put");

        for pick in crash_picks {
            let live = net.live_ids();
            if live.len() <= 8 {
                break;
            }
            net.crash(live[pick % live.len()]);
            net.converge(&mut rng);
            for id in net.live_ids() {
                net.replication_round(id, 3);
            }
        }
        let reader = net.live_ids()[0];
        let got = net.get(reader, key, &mut rng).expect("routed get");
        prop_assert_eq!(got.value.as_deref(), Some(b"invariant".as_ref()));
    }
}
