//! Sampling on a churning overlay — integration of simnet, chord and the
//! sampler (the paper's §4 open problem, exercised as a test).

use chord::{ChordConfig, ChordDht, ChurnSimulation};
use peer_sampling::{Sampler, SamplerConfig};
use rand::SeedableRng;
use simnet::churn::ChurnConfig;
use simnet::{SimDuration, SimTime};

fn churn(rate: f64, horizon: u64) -> ChurnConfig {
    ChurnConfig {
        arrivals_per_1000_ticks: rate,
        mean_lifetime: SimDuration::from_ticks(40_000),
        crash_fraction: 0.5,
        horizon: SimDuration::from_ticks(horizon),
    }
}

#[test]
fn sampler_succeeds_throughout_moderate_churn() {
    let mut sim = ChurnSimulation::new(
        128,
        ChordConfig::default(),
        churn(8.0, 20_000),
        SimDuration::from_ticks(200),
        1,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut failures = 0;
    let probes = 100;
    for p in 0..probes {
        sim.run_until(SimTime::from_ticks(20_000 * (p + 1) / probes));
        let net = sim.network();
        let live = net.live_ids();
        let anchor = live[(p as usize * 7) % live.len()];
        let dht = ChordDht::new(net, anchor, 50 + p);
        let sampler = Sampler::new(SamplerConfig::new(live.len() as u64).with_max_trials(64));
        if sampler.sample(&dht, &mut rng).is_err() {
            failures += 1;
        }
    }
    assert!(
        failures <= 2,
        "{failures}/{probes} samples failed under churn"
    );
}

#[test]
fn sampled_peers_are_always_live() {
    let mut sim = ChurnSimulation::new(
        96,
        ChordConfig::default(),
        churn(15.0, 15_000),
        SimDuration::from_ticks(150),
        3,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for p in 0..60u64 {
        sim.run_until(SimTime::from_ticks(15_000 * (p + 1) / 60));
        let net = sim.network();
        let live = net.live_ids();
        let dht = ChordDht::new(net, live[0], 90 + p);
        let sampler = Sampler::new(SamplerConfig::new(live.len() as u64).with_max_trials(64));
        if let Ok(sample) = sampler.sample(&dht, &mut rng) {
            assert!(
                net.node(sample.peer).is_alive(),
                "sampler returned a dead peer at t = {}",
                sim.now()
            );
        }
    }
}

#[test]
fn ring_converges_after_churn_and_sampling_is_exactly_correct_again() {
    let mut sim = ChurnSimulation::new(
        64,
        ChordConfig::default(),
        churn(20.0, 10_000),
        SimDuration::from_ticks(100),
        5,
    );
    sim.run_to_end();
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    // Let stabilization finish its work, then demand full convergence.
    let report = {
        let net = sim.network_mut();
        for _ in 0..3 {
            net.converge(&mut rng);
        }
        net.verify_ring()
    };
    assert!(report.is_converged(), "{report:?}");
    assert!(report.finger_accuracy > 0.99, "{report:?}");

    // On the converged ring, lookups match ground truth exactly again.
    let net = sim.network();
    let start = net.live_ids()[0];
    for _ in 0..100 {
        let target = net.space().random_point(&mut rng);
        let hit = net.find_successor(start, target, &mut rng).expect("lookup");
        assert_eq!(hit.point, net.ground_truth_successor(target));
    }
}
