//! End-to-end integration: the full paper pipeline over real Chord
//! routing, cross-checked against the oracle backend.

use chord::{ChordConfig, ChordDht, ChordNetwork};
use keyspace::{KeySpace, SortedRing};
use peer_sampling::{Dht, NetworkSizeEstimator, OracleDht, Sampler, SamplerConfig};
use rand::SeedableRng;
use stats::{divergence, ChiSquare};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// The two DHT backends must implement identical `h`/`next` semantics:
/// same points in, same peers out.
#[test]
fn oracle_and_chord_agree_on_h_and_next() {
    let space = KeySpace::full();
    let mut r = rng(1);
    let points = space.random_points(&mut r, 300);
    let oracle = OracleDht::new(SortedRing::new(space, points.clone()));
    let net = ChordNetwork::bootstrap(space, points, ChordConfig::default());
    let dht = ChordDht::new(&net, net.live_ids()[0], 2);

    for _ in 0..300 {
        let x = space.random_point(&mut r);
        let o = oracle.h(x).expect("oracle h");
        let c = dht.h(x).expect("chord h");
        assert_eq!(o.point, c.point, "h({x}) disagrees");
        let on = oracle.next(o.peer).expect("oracle next");
        let cn = dht.next(c.peer).expect("chord next");
        assert_eq!(on.point, cn.point, "next disagrees at {}", o.point);
    }
}

/// The sampler must produce statistically uniform peers over real Chord
/// routing, using a size *estimate* obtained through the same DHT.
#[test]
fn full_pipeline_is_uniform_on_chord() {
    let n = 400;
    let space = KeySpace::full();
    let mut r = rng(3);
    let net = ChordNetwork::bootstrap(
        space,
        space.random_points(&mut r, n),
        ChordConfig::default(),
    );
    let anchor = net.live_ids()[0];
    let dht = ChordDht::new(&net, anchor, 4);

    let estimate = NetworkSizeEstimator::default()
        .estimate(&dht, anchor)
        .expect("estimate");
    let sampler = Sampler::new(estimate.to_sampler_config());

    let draws = 40_000;
    let mut counts = vec![0u64; net.arena_len()];
    for _ in 0..draws {
        let s = sampler.sample(&dht, &mut r).expect("sample");
        counts[s.peer.index()] += 1;
    }
    let chi = ChiSquare::uniform(&counts).expect("test");
    assert!(
        chi.p_value() > 1e-4,
        "uniformity rejected on chord backend: {chi}"
    );
    assert!(
        divergence::tv_from_uniform(&counts) < 0.05,
        "tv too high: {}",
        divergence::tv_from_uniform(&counts)
    );
}

/// Different anchor peers must see the same uniform distribution — the
/// algorithm's guarantee is caller-independent.
#[test]
fn uniformity_is_anchor_independent() {
    let n = 200;
    let space = KeySpace::full();
    let mut r = rng(5);
    let net = ChordNetwork::bootstrap(
        space,
        space.random_points(&mut r, n),
        ChordConfig::default(),
    );
    let sampler = Sampler::new(SamplerConfig::new(n as u64));
    let mut counts = vec![0u64; net.arena_len()];
    let draws_per_anchor = 100;
    for (i, anchor) in net.live_ids().into_iter().enumerate().take(50) {
        let dht = ChordDht::new(&net, anchor, 100 + i as u64);
        for _ in 0..draws_per_anchor {
            let s = sampler.sample(&dht, &mut r).expect("sample");
            counts[s.peer.index()] += 1;
        }
    }
    let chi = ChiSquare::uniform(&counts).expect("test");
    assert!(
        chi.p_value() > 1e-4,
        "anchor-dependent bias detected: {chi}"
    );
}

/// Cost must scale like log n, not n: quadrupling the network should not
/// even double the mean message cost once past small sizes.
#[test]
fn cost_scales_sublinearly_on_chord() {
    let space = KeySpace::full();
    let mut r = rng(6);
    let mut means = Vec::new();
    for n in [512usize, 2048] {
        let net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        );
        let dht = ChordDht::new(&net, net.live_ids()[0], n as u64);
        let sampler = Sampler::new(SamplerConfig::new(n as u64));
        let mut msgs = 0u64;
        let draws = 150;
        for _ in 0..draws {
            msgs += sampler.sample(&dht, &mut r).expect("sample").cost.messages;
        }
        means.push(msgs as f64 / draws as f64);
    }
    assert!(
        means[1] < means[0] * 2.0,
        "4x peers should cost < 2x messages: {means:?}"
    );
}

/// The estimator must work end-to-end through Chord (not just the oracle).
#[test]
fn estimate_through_chord_is_within_lemma3_band() {
    let space = KeySpace::full();
    let mut r = rng(7);
    for n in [100usize, 1000] {
        let net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        );
        for (i, anchor) in net.live_ids().into_iter().step_by(n / 10).enumerate() {
            let dht = ChordDht::new(&net, anchor, i as u64);
            let est = NetworkSizeEstimator::default()
                .estimate(&dht, anchor)
                .expect("estimate");
            let ratio = est.n_hat / n as f64;
            assert!(
                (2.0 / 7.0 - 0.05..=6.05).contains(&ratio),
                "n = {n}, anchor {anchor}: ratio {ratio} outside Lemma 3 band"
            );
        }
    }
}
