//! The discrete Theorem 6, verified exhaustively and cross-implementation.
//!
//! Two independent implementations of the Figure-1 scan exist:
//!
//! * `peer_sampling::Sampler::trial` — the production path, generic over
//!   `Dht`, with the exact rejection short-circuit;
//! * `peer_sampling::assignment::owner_of` — the reference path, direct
//!   ring indexing, no short-circuit.
//!
//! These tests enumerate *every* point of small rings and assert the two
//! agree point-by-point (so the short-circuit provably changes nothing),
//! and that the resulting partition gives every peer exactly `λ` points.

use keyspace::{KeySpace, Point, SortedRing};
use peer_sampling::{assignment, OracleDht, Sampler, SamplerConfig, TrialOutcome};
use rand::SeedableRng;

fn small_ring(modulus: u128, n: usize, seed: u64) -> SortedRing {
    let space = KeySpace::with_modulus(modulus).expect("modulus");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SortedRing::new(space, space.random_distinct_points(&mut rng, n))
}

/// Production trial vs reference scan, every point, multiple seeds — with
/// the paper's step bound, where the short-circuit actually fires.
#[test]
fn sampler_trial_matches_reference_scan_everywhere() {
    for seed in 0..6 {
        let n = 20usize;
        let ring = small_ring(1 << 14, n, seed);
        let lambda = (1u64 << 14) / (7 * n as u64);
        let step_bound = (6.0 * (n as f64).ln()).ceil() as u32;

        let dht = OracleDht::free(ring.clone());
        let sampler = Sampler::new(SamplerConfig::new(n as u64).with_step_limit(step_bound));
        for c in 0..(1u64 << 14) {
            let s = Point::new(c);
            let reference = assignment::owner_of(&ring, lambda, step_bound, s);
            let production = match sampler.trial(&dht, s).expect("oracle") {
                TrialOutcome::Accepted { peer, .. } => Some(peer),
                TrialOutcome::Rejected { .. } => None,
            };
            assert_eq!(
                production, reference,
                "seed {seed}, s = {c}: production and reference scans disagree"
            );
        }
    }
}

/// The partition property: with an untruncated scan, every peer owns
/// exactly λ ring points, for a spread of ring sizes and populations.
#[test]
fn every_peer_owns_exactly_lambda_points() {
    let cases = [
        (1u128 << 12, 5usize),
        (1 << 14, 17),
        (1 << 16, 64),
        (1 << 16, 200),
    ];
    for (i, &(modulus, n)) in cases.iter().enumerate() {
        let ring = small_ring(modulus, n, 100 + i as u64);
        let lambda = (modulus / (7 * n as u128)) as u64;
        assert!(lambda > 0, "test case too tight");
        let counts = assignment::measure_per_peer(&ring, lambda, n as u32 + 1);
        for (peer, &c) in counts.iter().enumerate() {
            assert_eq!(
                c, lambda,
                "modulus {modulus}, n {n}: peer {peer} owns {c} != lambda {lambda}"
            );
        }
    }
}

/// Changing the λ denominator re-partitions but keeps exactness: the
/// ablation benches rely on this.
#[test]
fn exactness_holds_for_other_lambda_denominators() {
    let n = 16usize;
    let modulus = 1u128 << 14;
    let ring = small_ring(modulus, n, 9);
    for denom in [3u128, 7, 11, 20] {
        let lambda = (modulus / (denom * n as u128)) as u64;
        let counts = assignment::measure_per_peer(&ring, lambda, n as u32 + 1);
        assert!(
            counts.iter().all(|&c| c == lambda),
            "denominator {denom}: {counts:?} != {lambda}"
        );
    }
}

/// Acceptance probability equals `n·λ/M` exactly — Theorem 7's geometric
/// trial parameter, as a counting identity rather than a statistic.
#[test]
fn acceptance_measure_is_exactly_n_lambda() {
    let n = 30usize;
    let modulus = 1u128 << 15;
    let ring = small_ring(modulus, n, 11);
    let lambda = (modulus / (7 * n as u128)) as u64;
    let owned = assignment::owner_map(&ring, lambda, n as u32 + 1)
        .into_iter()
        .flatten()
        .count() as u64;
    assert_eq!(owned, lambda * n as u64);
}

/// Drawing through the public sampler API on a small ring reproduces the
/// exhaustive distribution (sanity link between the two levels).
#[test]
fn sampled_frequencies_match_exhaustive_partition() {
    let n = 12usize;
    let modulus = 1u128 << 12;
    let ring = small_ring(modulus, n, 13);
    let dht = OracleDht::free(ring);
    let sampler = Sampler::new(SamplerConfig::new(n as u64));
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let mut counts = vec![0u64; n];
    let draws = 60_000;
    for _ in 0..draws {
        counts[sampler.sample(&dht, &mut rng).expect("sample").peer] += 1;
    }
    let expected = draws as f64 / n as f64;
    for (peer, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64 - expected).abs() < expected * 0.1,
            "peer {peer}: {c} vs expected {expected}"
        );
    }
}
