//! Property-based tests for the sampler's core invariants.
//!
//! These complement the exhaustive enumeration in `tests/exactness.rs` by
//! letting proptest hunt for adversarial ring geometries (clusters, near-
//! boundary points, tiny populations) rather than relying on uniform
//! placement.

use keyspace::{KeySpace, Point, SortedRing};
use peer_sampling::{assignment, OracleDht, Sampler, SamplerConfig, TrialOutcome};
use proptest::collection::btree_set;
use proptest::prelude::*;

const MODULUS: u128 = 1 << 12;

/// Arbitrary distinct peer points on a small ring — proptest places them
/// anywhere, including pathological clusters.
fn arb_ring() -> impl Strategy<Value = SortedRing> {
    btree_set(0u64..(MODULUS as u64), 2..40).prop_map(|points| {
        let space = KeySpace::with_modulus(MODULUS).expect("modulus");
        SortedRing::new(space, points.into_iter().map(Point::new).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Discrete Theorem 6 on arbitrary (not just uniform-random) rings:
    /// the untruncated partition gives every peer exactly λ points.
    #[test]
    fn exact_lambda_measure_on_arbitrary_rings(ring in arb_ring()) {
        let n = ring.len() as u128;
        let lambda = (MODULUS / (7 * n)) as u64;
        prop_assume!(lambda > 0);
        let counts = assignment::measure_per_peer(&ring, lambda, ring.len() as u32 + 1);
        for (peer, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, lambda, "peer {} got {} != {}", peer, c, lambda);
        }
    }

    /// The production trial and the reference scan agree on every point,
    /// for arbitrary geometry and the paper's step bound.
    #[test]
    fn production_matches_reference_on_arbitrary_rings(
        ring in arb_ring(),
        offsets in proptest::collection::vec(0u64..(MODULUS as u64), 64),
    ) {
        let n = ring.len() as u64;
        let lambda = ((MODULUS) / (7 * n as u128)) as u64;
        prop_assume!(lambda > 0);
        let bound = (6.0 * (n as f64).ln()).ceil().max(1.0) as u32;
        let dht = OracleDht::free(ring.clone());
        let sampler = Sampler::new(SamplerConfig::new(n).with_step_limit(bound));
        for c in offsets {
            let s = Point::new(c);
            let reference = assignment::owner_of(&ring, lambda, bound, s);
            let production = match sampler.trial(&dht, s).expect("oracle") {
                TrialOutcome::Accepted { peer, .. } => Some(peer),
                TrialOutcome::Rejected { .. } => None,
            };
            prop_assert_eq!(production, reference, "disagreement at s = {}", c);
        }
    }

    /// Truncating the step bound never re-routes ownership, only rejects:
    /// the monotonicity that makes the step bound safe.
    #[test]
    fn step_bound_truncation_is_monotone(ring in arb_ring(), limit in 1u32..8) {
        let n = ring.len() as u128;
        let lambda = (MODULUS / (7 * n)) as u64;
        prop_assume!(lambda > 0);
        let full = assignment::owner_map(&ring, lambda, ring.len() as u32 + 1);
        let cut = assignment::owner_map(&ring, lambda, limit);
        for (s, (f, c)) in full.iter().zip(&cut).enumerate() {
            match (f, c) {
                (Some(a), Some(b)) => prop_assert_eq!(a, b, "point {} re-routed", s),
                (None, Some(_)) => prop_assert!(false, "truncation created owner at {}", s),
                _ => {}
            }
        }
    }

    /// Every accepted point's owner is reachable from h(s) by forward
    /// scanning only — ownership never jumps backward past the start.
    #[test]
    fn owner_is_clockwise_of_h(ring in arb_ring(), c in 0u64..(MODULUS as u64)) {
        let n = ring.len() as u128;
        let lambda = (MODULUS / (7 * n)) as u64;
        prop_assume!(lambda > 0);
        let s = Point::new(c);
        if let Some(owner) = assignment::owner_of(&ring, lambda, ring.len() as u32 + 1, s) {
            let space = ring.space();
            let h = ring.successor_of(s);
            // Walking clockwise from s we must meet h before (or at) owner.
            let d_h = space.distance(s, ring.point(h));
            let d_owner = space.distance(s, ring.point(owner));
            prop_assert!(d_h <= d_owner, "owner {} precedes h {}", owner, h);
        }
    }

    /// The sampler's public API never returns an out-of-range peer or a
    /// mismatched point, regardless of configuration inflation.
    #[test]
    fn sample_returns_consistent_peer(
        ring in arb_ring(),
        inflate in 1u64..4,
        seed in any::<u64>(),
    ) {
        let n = ring.len() as u64;
        let config = SamplerConfig::new(n * inflate);
        let space = ring.space();
        prop_assume!(config.lambda(space).is_ok());
        let dht = OracleDht::new(ring);
        let sampler = Sampler::new(config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let sample = sampler.sample(&dht, &mut rng).expect("sampling");
        prop_assert!(sample.peer < dht.len());
        prop_assert_eq!(dht.ring().point(sample.peer), sample.point);
    }
}
