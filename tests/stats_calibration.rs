//! Self-calibration of the statistical machinery.
//!
//! Every experiment verdict rests on the `stats` crate being *itself*
//! correct: a chi-square test whose p-values are skewed would silently
//! accept a biased sampler or reject a correct one. These tests validate
//! the machinery by simulation against known ground truth.

use rand::{Rng, SeedableRng};
use stats::entropy::GTest;
use stats::{divergence, proportion, ChiSquare};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Under the null hypothesis (true uniform sampling), chi-square p-values
/// must themselves be uniform on (0, 1): their empirical deciles should be
/// flat. A skew here would bias every experiment verdict.
#[test]
fn chi_square_p_values_are_uniform_under_null() {
    let mut r = rng(1);
    let categories = 50usize;
    let draws_per_run = 5_000;
    let runs = 400;
    let mut deciles = [0u32; 10];
    for _ in 0..runs {
        let mut counts = vec![0u64; categories];
        for _ in 0..draws_per_run {
            counts[r.gen_range(0..categories)] += 1;
        }
        let p = ChiSquare::uniform(&counts).expect("valid").p_value();
        deciles[((p * 10.0) as usize).min(9)] += 1;
    }
    // Each decile expects 40; a chi-square on the deciles themselves
    // should not explode (threshold ≈ p < 0.001 for 9 dof is 27.9).
    let expected = runs as f64 / 10.0;
    let stat: f64 = deciles
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    assert!(
        stat < 27.9,
        "p-value deciles not uniform: {deciles:?} (chi2 = {stat:.1})"
    );
}

/// The test must have power: a small planted bias must be detected at
/// large sample sizes but invisible at small ones.
#[test]
fn chi_square_power_grows_with_sample_size() {
    let mut r = rng(2);
    let categories = 20usize;
    // Category 0 is 30% more likely than the rest.
    let mut draw = |n: usize| {
        let mut counts = vec![0u64; categories];
        for _ in 0..n {
            let x = r.gen_range(0..categories as u64 * 10 + 3);
            let idx = if x < 13 {
                0
            } else {
                1 + (x as usize - 13) % (categories - 1)
            };
            counts[idx] += 1;
        }
        ChiSquare::uniform(&counts).expect("valid").p_value()
    };
    // Tiny sample: bias hidden (most of the time).
    let small_rejections = (0..20).filter(|_| draw(200) < 0.05).count();
    assert!(
        small_rejections <= 8,
        "{small_rejections}/20 tiny-sample rejections"
    );
    // Large sample: bias found essentially always.
    let large_rejections = (0..20).filter(|_| draw(100_000) < 0.05).count();
    assert!(
        large_rejections >= 19,
        "only {large_rejections}/20 large-sample rejections"
    );
}

/// G-test and chi-square must agree asymptotically under the null.
#[test]
fn g_test_tracks_chi_square_under_null() {
    let mut r = rng(3);
    for _ in 0..50 {
        let mut counts = vec![0u64; 30];
        for _ in 0..30_000 {
            counts[r.gen_range(0..30usize)] += 1;
        }
        let chi = ChiSquare::uniform(&counts).expect("valid");
        let g = GTest::uniform(&counts).expect("valid");
        assert!(
            (chi.p_value() - g.p_value()).abs() < 0.05,
            "chi p {} vs G p {}",
            chi.p_value(),
            g.p_value()
        );
    }
}

/// Wilson intervals must achieve (at least roughly) their nominal
/// coverage: a 95% interval should contain the true proportion in ~95% of
/// simulations.
#[test]
fn wilson_intervals_have_nominal_coverage() {
    let mut r = rng(4);
    for &p_true in &[0.05f64, 0.3, 0.5, 0.9] {
        let runs = 1000;
        let trials = 400u64;
        let mut covered = 0;
        for _ in 0..runs {
            let successes = (0..trials).filter(|_| r.gen::<f64>() < p_true).count() as u64;
            if proportion::wilson(successes, trials, 0.95).contains(p_true) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / runs as f64;
        assert!(
            (0.92..=0.98).contains(&coverage),
            "p = {p_true}: coverage {coverage}"
        );
    }
}

/// TV distance of an empirical histogram from its own source converges at
/// the known `√(n/(2πN))`-ish rate — the "noise floor" the experiment
/// verdicts quote.
#[test]
fn tv_noise_floor_matches_theory() {
    let mut r = rng(5);
    let n = 100usize;
    for &draws in &[10_000usize, 160_000] {
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[r.gen_range(0..n)] += 1;
        }
        let tv = divergence::tv_from_uniform(&counts);
        let floor = (n as f64 / (2.0 * std::f64::consts::PI * draws as f64)).sqrt();
        assert!(
            tv > floor * 0.5 && tv < floor * 2.5,
            "draws {draws}: TV {tv} vs floor {floor}"
        );
    }
}

/// The normal quantile function must be consistent with empirical normal
/// samples (Box–Muller), closing the loop between the two normal-handling
/// code paths in the workspace.
#[test]
fn normal_quantile_matches_box_muller_samples() {
    let mut r = rng(6);
    let mut samples: Vec<f64> = (0..40_000)
        .map(|_| {
            let u1: f64 = r.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = r.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for &q in &[0.1f64, 0.25, 0.5, 0.75, 0.9, 0.975] {
        let empirical = samples[(q * samples.len() as f64) as usize];
        let theoretical = proportion::standard_normal_quantile(q);
        assert!(
            (empirical - theoretical).abs() < 0.05,
            "q = {q}: empirical {empirical} vs quantile {theoretical}"
        );
    }
}
