//! Storage durability through full membership churn (joins + leaves +
//! crashes), with anti-entropy riding the maintenance schedule.

use chord::{ChordConfig, ChurnSimulation};
use keyspace::Point;
use rand::{Rng, SeedableRng};
use simnet::churn::ChurnConfig;
use simnet::{SimDuration, SimTime};

#[test]
fn replicated_data_survives_full_churn() {
    let churn = ChurnConfig {
        arrivals_per_1000_ticks: 8.0,
        mean_lifetime: SimDuration::from_ticks(25_000),
        crash_fraction: 0.5,
        horizon: SimDuration::from_ticks(20_000),
    };
    let mut sim = ChurnSimulation::new(
        128,
        ChordConfig::default(),
        churn,
        SimDuration::from_ticks(200),
        17,
    )
    .with_replication(4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(18);

    // Store 80 keys before the churn begins.
    let keys: Vec<Point> = {
        let net = sim.network_mut();
        let gateway = net.live_ids()[0];
        let keys: Vec<Point> = (0..80)
            .map(|_| {
                let space = net.space();
                space.random_point(&mut rng)
            })
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            net.put(gateway, k, vec![i as u8], 4, &mut rng)
                .expect("put");
        }
        keys
    };

    // Run the whole churn schedule (joins, leaves, crashes, maintenance
    // with replication).
    let report = sim.run_to_end();
    assert!(report.crashes > 0, "the run must include crashes: {report}");
    assert!(report.joins > 50, "the run must include joins: {report}");

    // Every key must still be retrievable with its original value.
    let net = sim.network();
    let reader = net.live_ids()[0];
    let mut lost = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        let got = net.get(reader, k, &mut rng).expect("routed get");
        if got.value.as_deref() != Some([i as u8].as_ref()) {
            lost.push(i);
        }
    }
    assert!(
        lost.len() <= 1,
        "{} of 80 keys lost through churn: {lost:?}",
        lost.len()
    );
}

#[test]
fn ownership_follows_joins_during_churn() {
    // With replication-aware maintenance, the current owner of a key
    // should end up actually holding it (not just a fallback replica)
    // for the overwhelming majority of keys.
    let churn = ChurnConfig {
        arrivals_per_1000_ticks: 10.0,
        mean_lifetime: SimDuration::from_ticks(40_000),
        crash_fraction: 0.0, // joins and graceful leaves only
        horizon: SimDuration::from_ticks(15_000),
    };
    let mut sim = ChurnSimulation::new(
        96,
        ChordConfig::default(),
        churn,
        SimDuration::from_ticks(150),
        19,
    )
    .with_replication(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(20);

    let keys: Vec<Point> = {
        let net = sim.network_mut();
        let gateway = net.live_ids()[0];
        let keys: Vec<Point> = (0..60)
            .map(|_| net.space().random_point(&mut rng))
            .collect();
        for &k in &keys {
            net.put(gateway, k, b"v".to_vec(), 3, &mut rng)
                .expect("put");
        }
        keys
    };

    sim.run_until(SimTime::from_ticks(15_000));
    // A few extra maintenance cycles to let anti-entropy finish.
    {
        let net = sim.network_mut();
        for _ in 0..3 {
            net.converge(&mut rng);
            for id in net.live_ids() {
                net.replication_round(id, 3);
            }
        }
    }

    let net = sim.network();
    let mut owner_holds = 0;
    for &k in &keys {
        let owner = net.ground_truth_successor(k);
        let owner_id = net
            .live_ids()
            .into_iter()
            .find(|&id| net.node(id).point() == owner)
            .expect("owner is live");
        if net.node(owner_id).store().contains_key(&k) {
            owner_holds += 1;
        }
    }
    assert!(
        owner_holds >= 57,
        "only {owner_holds}/60 keys migrated to their current owner"
    );
}

#[test]
fn replication_factor_is_maintained_under_churn() {
    let churn = ChurnConfig {
        arrivals_per_1000_ticks: 5.0,
        mean_lifetime: SimDuration::from_ticks(30_000),
        crash_fraction: 1.0, // crashes only: hardest case for replicas
        horizon: SimDuration::from_ticks(12_000),
    };
    let mut sim = ChurnSimulation::new(
        128,
        ChordConfig::default(),
        churn,
        SimDuration::from_ticks(150),
        21,
    )
    .with_replication(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(22);

    let keys: Vec<Point> = {
        let net = sim.network_mut();
        let gateway = net.live_ids()[0];
        let keys: Vec<Point> = (0..40)
            .map(|_| net.space().random_point(&mut rng))
            .collect();
        for &k in &keys {
            net.put(gateway, k, b"r".to_vec(), 3, &mut rng)
                .expect("put");
        }
        keys
    };
    sim.run_to_end();
    {
        let net = sim.network_mut();
        net.converge(&mut rng);
        for id in net.live_ids() {
            net.replication_round(id, 3);
        }
    }
    let net = sim.network();
    let healthy = keys.iter().filter(|&&k| net.stored_copies(k) >= 3).count();
    assert!(
        healthy >= 38,
        "only {healthy}/40 keys kept 3+ copies through crash churn"
    );
    let _ = rng.gen::<u64>();
}
