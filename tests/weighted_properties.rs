//! Property-based tests for the weighted sampler (open problem 3).
//!
//! The exactness claim — each peer owns exactly `λ(p)` ring points — must
//! hold for *arbitrary* weight assignments and ring geometries, not just
//! the smooth cases the unit tests pick. proptest hunts for adversarial
//! combinations.

use keyspace::{KeySpace, Point, SortedRing};
use peer_sampling::weighted::WeightedSampler;
use peer_sampling::OracleDht;
use proptest::collection::{btree_set, vec as pvec};
use proptest::prelude::*;
use std::collections::HashMap;

const MODULUS: u128 = 1 << 12;

fn arb_ring() -> impl Strategy<Value = SortedRing> {
    btree_set(0u64..(MODULUS as u64), 2..24).prop_map(|points| {
        let space = KeySpace::with_modulus(MODULUS).expect("modulus");
        SortedRing::new(space, points.into_iter().map(Point::new).collect())
    })
}

/// Exhaustively count each peer's preimages under a weight map.
fn measure(ring: &SortedRing, weights: &HashMap<Point, u64>, steps: u32) -> Vec<u64> {
    let dht = OracleDht::free(ring.clone());
    let sampler = WeightedSampler::new(steps, 1);
    let weight_fn = |p: Point| weights.get(&p).copied().unwrap_or(0);
    let mut counts = vec![0u64; ring.len()];
    for c in 0..MODULUS as u64 {
        if let Some(peer) = sampler
            .trial(&dht, &weight_fn, Point::new(c))
            .expect("oracle")
            .accepted_peer()
        {
            counts[peer] += 1;
        }
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary per-peer weights, arbitrary geometry: exact measure,
    /// provided the total demand fits in the ring.
    #[test]
    fn arbitrary_weights_are_exact(
        ring in arb_ring(),
        raw_weights in pvec(0u64..120, 24),
    ) {
        let n = ring.len();
        let weights: HashMap<Point, u64> = (0..n)
            .map(|r| (ring.point(r), raw_weights[r % raw_weights.len()]))
            .collect();
        let total: u128 = weights.values().map(|&w| w as u128).sum();
        prop_assume!(total <= MODULUS / 2);
        let counts = measure(&ring, &weights, n as u32 * 4);
        for rank in 0..n {
            let expected = weights[&ring.point(rank)];
            prop_assert_eq!(
                counts[rank], expected,
                "rank {} owns {} != lambda(p) {}", rank, counts[rank], expected
            );
        }
    }

    /// Total accepted measure equals total demanded measure (acceptance
    /// probability is exactly Σλ/M).
    #[test]
    fn total_acceptance_equals_total_demand(
        ring in arb_ring(),
        base in 1u64..60,
    ) {
        let n = ring.len();
        let weights: HashMap<Point, u64> = (0..n)
            .map(|r| (ring.point(r), base + (r as u64 * 7) % 50))
            .collect();
        let total: u128 = weights.values().map(|&w| w as u128).sum();
        prop_assume!(total <= MODULUS / 2);
        let counts = measure(&ring, &weights, n as u32 * 4);
        prop_assert_eq!(counts.iter().sum::<u64>() as u128, total);
    }

    /// Weighted with equal weights ≡ uniform sampler's assignment.
    #[test]
    fn equal_weights_match_uniform_assignment(ring in arb_ring()) {
        let n = ring.len() as u128;
        let lambda = (MODULUS / (7 * n)) as u64;
        prop_assume!(lambda > 0);
        let weights: HashMap<Point, u64> =
            (0..ring.len()).map(|r| (ring.point(r), lambda)).collect();
        let weighted = measure(&ring, &weights, ring.len() as u32 + 1);
        let uniform = peer_sampling::assignment::measure_per_peer(
            &ring, lambda, ring.len() as u32 + 1);
        prop_assert_eq!(weighted, uniform);
    }
}
