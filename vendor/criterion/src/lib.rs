//! Offline stand-in for `criterion`.
//!
//! Benchmarks compile and run (`cargo bench`) and print mean wall-clock
//! time per iteration. No statistical analysis, warm-up calibration or
//! HTML reports — this exists so the bench targets stay buildable and
//! usable without crates.io access.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: u64,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One calibration pass to size the measured batch.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().as_nanos().max(1);
        // Aim for ~50ms of measured work, capped by the sample size.
        let iters = (50_000_000 / once).clamp(1, self.sample_size as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of iterations measured per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n as u64;
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut bencher, input);
        report(&full, bencher.last_ns_per_iter);
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut bencher);
        report(&full, bencher.last_ns_per_iter);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        self.sample_size = 100;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut bencher);
        report(name, bencher.last_ns_per_iter);
        self
    }
}

fn report(name: &str, ns: f64) {
    if ns >= 1_000_000.0 {
        println!("{name:<48} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("{name:<48} {:>12.3} us/iter", ns / 1_000.0);
    } else {
        println!("{name:<48} {ns:>12.1} ns/iter");
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
