//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's ergonomics: `lock()`
//! returns the guard directly (poisoning is translated into a panic, which
//! is parking_lot's behaviour by construction — it has no poisoning).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock whose `read()`/`write()` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
