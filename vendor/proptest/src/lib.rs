//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and `any::<T>()` strategies,
//! `Just`, `prop_oneof!`, `collection::{vec, btree_set}`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from upstream: case generation is deterministic (fixed
//! internal seed, so failures reproduce across runs) and failing cases are
//! **not shrunk** — the panic message reports the case number instead.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// The RNG driving case generation.
    pub type TestRng = StdRng;

    /// A recipe for generating values of one type.
    ///
    /// Object-safe: `generate` takes `&self`, so strategies can be boxed
    /// (used by [`Union`], the engine behind `prop_oneof!`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range");
            let span = self.end - self.start;
            if span <= u64::MAX as u128 {
                self.start + rng.gen_range(0..span as u64) as u128
            } else {
                // Spans above 2^64 appear only as coarse magnitude picks in
                // these tests; modulo bias at this width is immaterial.
                self.start + rng.gen::<u128>() % span
            }
        }
    }

    impl Strategy for core::ops::RangeInclusive<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range");
            let span = hi - lo + 1;
            if span <= u64::MAX as u128 {
                lo + rng.gen_range(0..span as u64) as u128
            } else {
                lo + rng.gen::<u128>() % span
            }
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;
        /// The canonical full-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for integer types.
    #[derive(Debug, Clone, Copy)]
    pub struct FullRange<T>(core::marker::PhantomData<T>);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen::<$t>()
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> FullRange<$t> {
                    FullRange(core::marker::PhantomData)
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for FullRange<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;
        fn arbitrary() -> FullRange<bool> {
            FullRange(core::marker::PhantomData)
        }
    }

    /// The canonical strategy for the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// A uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        alternatives: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `alternatives` is empty.
        pub fn new(alternatives: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
            Union { alternatives }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.alternatives.len());
            self.alternatives[i].generate(rng)
        }
    }

    /// Boxes a strategy for use in a [`Union`] (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Sizes acceptable to [`vec`] / [`btree_set`]: a fixed `usize` or a
    /// `usize` range.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound on the generated size.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// Strategy for `BTreeSet<T>` with sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.lo..=self.hi);
            let mut out = BTreeSet::new();
            // Bounded retries: duplicate-heavy element domains settle for a
            // smaller (but >= 1 if target >= 1) set rather than spinning.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(64) + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A set of distinct `element` values with cardinality in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S> {
        let (lo, hi) = size.bounds();
        BTreeSetStrategy { element, lo, hi }
    }
}

pub mod test_runner {
    //! Case-execution plumbing used by the `proptest!` macro expansion.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is discarded, not counted.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// Runs `case` until `config.cases` successes (panicking on the first
    /// failure), discarding rejected cases up to a sanity cap.
    pub fn run<F>(config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Fixed seed: deterministic, reproducible failures. Derived from the
        // case count so differently-sized configs don't share prefixes.
        let mut rng = TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ config.cases as u64);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest: too many rejected cases \
                             ({rejected} rejects for {passed} passes) — \
                             loosen the prop_assume! conditions"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest: case {} failed: {msg}", passed + rejected + 1);
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0u64..100, ys in proptest::collection::vec(0u32..9, 8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(&config, |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strategy), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 3usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..=5).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and extra attributes are carried through.
        #[test]
        fn maps_and_unions_compose(v in prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            Just(1u64),
        ]) {
            prop_assert!(v == 1 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn collections_respect_sizes(
            xs in crate::collection::vec(0u32..100, 1..5),
            set in crate::collection::btree_set(0u64..1000, 2..8),
        ) {
            prop_assert!((1..5).contains(&xs.len()));
            prop_assert!(set.len() >= 2 && set.len() < 8);
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 8usize);
        let a = s.generate(&mut TestRng::seed_from_u64(1));
        let b = s.generate(&mut TestRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_report_case_number() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            |_| -> Result<(), crate::test_runner::TestCaseError> {
                Err(crate::test_runner::TestCaseError::Fail("boom".into()))
            },
        );
    }
}
