//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the API subset the workspace uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++ seeded
//! through SplitMix64 — statistically strong for simulation workloads and
//! deterministic per seed, which is all the experiments require. The stream
//! differs from upstream `rand`'s ChaCha-based `StdRng`, so seeds reproduce
//! results *within* this workspace, not against external baselines.

#![forbid(unsafe_code)]

/// The core of a random number generator: raw output blocks.
///
/// Object-safe (used as `&mut dyn RngCore` by the baseline samplers).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (the subset of rand's `Standard`
/// distribution this workspace uses).
pub trait Standard: Sized {
    /// Draws one value with the standard distribution for the type
    /// (uniform over the full range for integers, `[0, 1)` for floats).
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform draw below `span` (`span >= 1`), bias-free via rejection.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    // 2^64 mod span; values >= 2^64 - m would bias `% span`.
    let m = (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if m == 0 || v <= u64::MAX - m {
            return v % span;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span as u64) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as Standard>::standard(rng)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience methods layered over [`RngCore`] (mirrors rand's `Rng`).
pub trait Rng: RngCore {
    /// One value of type `T` with the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// One value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        <f64 as Standard>::standard(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Public-domain algorithm by Blackman & Vigna; passes BigCrush and is
    /// far faster than the ChaCha generator upstream `StdRng` wraps.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0, 0, 0, 0] {
                // xoshiro's one forbidden state; any fixed non-zero
                // replacement keeps construction deterministic.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace treats small and standard generators alike.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(2);
        let mean: f64 = (0..100_000).map(|_| r.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 10, "all values should appear");
        for _ in 0..1000 {
            let v = r.gen_range(5usize..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_range_unbiased_small_span() {
        // span 3 over u64: frequencies within 2% of each other.
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0u64; 3];
        for _ in 0..300_000 {
            counts[r.gen_range(0u64..3) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 100_000.0).abs() < 2_000.0, "{counts:?}");
        }
    }

    #[test]
    fn full_inclusive_range_is_identity_domain() {
        let mut r = StdRng::seed_from_u64(5);
        // Must not panic or loop: the span covers the whole u64 domain.
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn dyn_rngcore_supports_rng_methods() {
        let mut r = StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let v = dyn_rng.gen_range(0usize..10);
        assert!(v < 10);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 17];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(10);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 - 25_000.0).abs() < 1_500.0, "{hits}");
    }

    #[test]
    fn seed_from_u64_differs_from_from_seed_zeroes() {
        let z = StdRng::from_seed([0u8; 32]);
        let s = StdRng::seed_from_u64(0);
        assert_ne!(z, s);
    }
}
