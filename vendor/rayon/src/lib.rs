//! Offline stand-in for `rayon`.
//!
//! Implements the `par_iter()` / `into_par_iter()` → `map` → `collect`
//! pipeline on slices, vectors and ranges, executing on `std::thread::scope`
//! with one worker per available core. Results keep input order, so a
//! parallel map is a drop-in, deterministic replacement for the sequential
//! one whenever the mapped closure is itself deterministic. No work
//! stealing: items are dealt up front in *interleaved stripes* (worker `w`
//! of `W` takes items `w, w + W, w + 2W, …`), so when per-item cost varies
//! systematically with input position — scenario sweeps order tasks by
//! scenario, and scenarios differ wildly in cost — every worker gets a
//! cross-section of cheap and expensive items instead of one worker
//! drawing the contiguous block of expensive ones and becoming the tail.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

pub mod prelude {
    //! Glob-import surface: `use rayon::prelude::*;`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Deals `items` into `workers` interleaved stripes: stripe `w` receives
/// items `w, w + workers, w + 2·workers, …` in that order.
fn deal_stripes<T>(items: Vec<T>, workers: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let mut stripes: Vec<Vec<T>> = (0..workers)
        .map(|_| Vec::with_capacity(n.div_ceil(workers)))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        stripes[i % workers].push(item);
    }
    stripes
}

/// Inverse of [`deal_stripes`]: output index `i` is stripe `i % W`, rank
/// `i / W`, so the result is in original input order.
fn reassemble<O>(stripes: Vec<Vec<O>>, n: usize) -> Vec<O> {
    let mut iters: Vec<std::vec::IntoIter<O>> = stripes.into_iter().map(Vec::into_iter).collect();
    let mut out = Vec::with_capacity(n);
    'rounds: loop {
        for it in iters.iter_mut() {
            match it.next() {
                Some(o) => out.push(o),
                // Stripe lengths are non-increasing, so the first
                // exhausted stripe ends the reassembly.
                None => break 'rounds,
            }
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Maps `items` through `f` on scoped threads, preserving order.
fn parallel_map_vec<T: Send, O: Send>(items: Vec<T>, f: impl Fn(T) -> O + Sync) -> Vec<O> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = worker_count(n);
    let stripes = deal_stripes(items, workers);
    let f = &f;
    let results: Vec<Vec<O>> = std::thread::scope(|scope| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| scope.spawn(move || stripe.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    reassemble(results, n)
}

/// A parallel iterator: a concrete item source plus a mapping pipeline.
pub trait ParallelIterator: Sized {
    /// The element type produced.
    type Item: Send;

    /// Runs the pipeline, producing all results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Appends a map stage.
    fn map<O: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> O + Sync + Send,
    {
        Map { inner: self, f }
    }

    /// Executes and collects into `C` (in input order).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Executes and sums the results.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Executes and counts the results.
    fn count(self) -> usize {
        self.run().len()
    }
}

/// Pipeline stage created by [`ParallelIterator::map`].
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, O, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync + Send,
{
    type Item = O;

    fn run(self) -> Vec<O> {
        let Map { inner, f } = self;
        parallel_map_vec(inner.run(), f)
    }
}

/// Parallel iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IntoParIter<usize>;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    type Iter = IntoParIter<u64>;
    fn into_par_iter(self) -> IntoParIter<u64> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Parallel iterator over borrowed items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// Types whose references can be iterated in parallel (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn into_par_iter_owned_and_ranges() {
        let squares: Vec<usize> = (0usize..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[99], 99 * 99);
        let owned: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x: i32| x.to_string())
            .collect();
        assert_eq!(owned, ["1", "2", "3"]);
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<u64> = (0u64..50)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x * 10)
            .collect();
        assert_eq!(out[0], 10);
        assert_eq!(out[49], 500);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0usize..256)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(
            cores == 1 || threads > 1,
            "expected multi-threaded execution, saw {threads} thread(s)"
        );
    }

    #[test]
    fn stripes_are_dealt_interleaved() {
        // Worker w of W must receive items w, w + W, w + 2W, … — the
        // dealing order that spreads positionally clustered expensive
        // items across all workers instead of into one tail chunk.
        let stripes = crate::deal_stripes((0..10usize).collect(), 3);
        assert_eq!(
            stripes,
            vec![vec![0, 3, 6, 9], vec![1, 4, 7], vec![2, 5, 8]]
        );
        // Degenerate shapes: more workers than items, one worker.
        assert_eq!(
            crate::deal_stripes((0..2usize).collect(), 4),
            vec![vec![0], vec![1], vec![], vec![]]
        );
        assert_eq!(
            crate::deal_stripes((0..4usize).collect(), 1),
            vec![vec![0, 1, 2, 3]]
        );
    }

    #[test]
    fn reassembly_restores_input_order() {
        for n in [0usize, 1, 2, 5, 9, 10, 11, 64, 257] {
            for workers in [1usize, 2, 3, 7, 8] {
                let items: Vec<usize> = (0..n).collect();
                let stripes = crate::deal_stripes(items.clone(), workers);
                assert_eq!(
                    crate::reassemble(stripes, n),
                    items,
                    "n = {n}, workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn sum_and_count() {
        let total: u64 = (1u64..=100).collect::<Vec<_>>().into_par_iter().sum();
        assert_eq!(total, 5050);
        assert_eq!((0usize..7).into_par_iter().count(), 7);
    }
}
