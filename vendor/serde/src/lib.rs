//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor architecture, this shim routes all
//! (de)serialization through one self-describing [`value::Value`] tree —
//! ample for the workspace's needs (JSON reports and round-trippable
//! scenario specs) while keeping the derive macro small. The derive macros
//! (re-exported from `serde_derive`) support non-generic structs with named
//! fields and enums with unit / newtype / struct variants, mirroring
//! serde's externally-tagged representation.

#![forbid(unsafe_code)]

use core::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing data model.

    /// A dynamically-typed (de)serialization value.
    ///
    /// Maps preserve insertion order so emitted JSON is deterministic.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// Any integer (wide enough for `u64` and `i64` exactly).
        Int(i128),
        /// A binary float.
        Float(f64),
        /// A string.
        Str(String),
        /// An ordered sequence.
        Seq(Vec<Value>),
        /// An ordered string-keyed map.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// The map entries, if this is a map.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(entries) => Some(entries),
                _ => None,
            }
        }

        /// The elements, if this is a sequence.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Map lookup by key (linear; maps here are small).
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_map()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }

        /// A one-word description for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) => "integer",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "sequence",
                Value::Map(_) => "map",
            }
        }
    }
}

use value::Value;

/// Error raised during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Field lookup used by derived `Deserialize` impls: missing keys read as
/// `Null`, so `Option` fields tolerate omission.
pub fn field<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::new(format!(
                            "integer {i} out of range for {}", stringify!($t)
                        ))
                    }),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit integers ride the same `Value::Int(i128)` channel; only values
// exceeding i128 (u128 above 2^127 − 1) are unrepresentable and rejected
// at serialization time. The workspace's widest integer (`KeySpace`'s
// `2^64` modulus) fits comfortably.
impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<i128, Error> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(Error::new(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // `Serialize::to_value` is infallible by design, so values above
        // i128::MAX (which this workspace never produces; its widest is
        // the 2^64 modulus) cannot fail loudly here. Panic rather than
        // silently writing `null` into a report.
        match i128::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => panic!("u128 value {self} exceeds the Value::Int range"),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<u128, Error> {
        match v {
            Value::Int(i) => u128::try_from(*i)
                .map_err(|_| Error::new(format!("integer {i} out of range for u128"))),
            other => Err(Error::new(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    // JSON cannot distinguish 1.0 from 1; accept integers.
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let some: Option<u64> = Some(9);
        assert_eq!(Option::<u64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn missing_field_reads_null() {
        let entries = vec![("a".to_string(), Value::Int(1))];
        assert_eq!(super::field(&entries, "a"), &Value::Int(1));
        assert_eq!(super::field(&entries, "b"), &Value::Null);
    }
}
