//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` with a
//! hand-rolled token parser (no `syn`/`quote` available offline).
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * non-generic `struct` with named fields,
//! * non-generic tuple `struct` (newtype structs serialize transparently
//!   as their single field, wider tuples as sequences — upstream serde's
//!   representations),
//! * non-generic `enum` whose variants are unit, newtype (one field) or
//!   struct-like (named fields),
//!
//! using serde's externally-tagged enum representation. Unsupported shapes
//! produce a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (Value-tree serialization).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize` (Value-tree deserialization).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Which::Serialize => gen_serialize(&item),
                Which::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("serde_derive generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// A tuple struct with the given arity.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor; returns the new cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// From a field list cursor sitting just after `name:`, skips the type,
/// returning the index of the separating top-level comma (or `len`).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses `name: Type, ...` inside a brace group into field names.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found `{other:?}` \
                     (tuple fields are unsupported by the vendored serde_derive)"
                ))
            }
        }
        i = skip_type(&tokens, i);
        i += 1; // consume the comma, if any
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Split the parenthesized payload on top-level commas; a
                // newtype variant has exactly one non-empty type segment.
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut segments = 0;
                let mut j = 0;
                while j < inner.len() {
                    let start = j;
                    j = skip_type(&inner, j);
                    if j > start {
                        segments += 1;
                    }
                    j += 1; // consume the separating comma, if any
                }
                if segments != 1 {
                    return Err(format!(
                        "variant `{name}`: only single-field (newtype) tuple \
                         variants are supported by the vendored serde_derive"
                    ));
                }
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => {
                return Err(format!(
                    "unexpected token `{other}` after variant `{name}` \
                     (discriminants are unsupported)"
                ))
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "`{name}`: generic types are unsupported by the vendored serde_derive"
            ));
        }
    }
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => match keyword.as_str() {
            "struct" => Shape::Struct(parse_named_fields(g.stream())?),
            "enum" => Shape::Enum(parse_variants(g.stream())?),
            other => return Err(format!("cannot derive for `{other}` items")),
        },
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && keyword == "struct" =>
        {
            let arity = count_tuple_fields(g.stream());
            if arity == 0 {
                return Err(format!(
                    "`{name}`: zero-field tuple structs are unsupported by the \
                     vendored serde_derive"
                ));
            }
            Shape::Tuple(arity)
        }
        other => return Err(format!("expected `{{...}}` body, found `{other:?}`")),
    };
    Ok(Item { name, shape })
}

/// Counts the top-level comma-separated type segments of a tuple-struct
/// body `(A, B<C, D>, ...)`.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut segments = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let start = i;
        i = skip_type(&tokens, i);
        if i > start {
            segments += 1;
        }
        i += 1; // consume the separating comma, if any
    }
    segments
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         _serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "_serde::value::Value::Map(::std::vec![{}])",
                entries.join(", ")
            )
        }
        // Newtype structs are transparent; wider tuples are sequences
        // (upstream serde's representations).
        Shape::Tuple(1) => "_serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("_serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "_serde::value::Value::Seq(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => _serde::value::Value::Str(\
                             ::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vn}(inner) => _serde::value::Value::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                             _serde::Serialize::to_value(inner))]),"
                        ),
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         _serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            let bindings = fields.join(", ");
                            format!(
                                "{name}::{vn} {{ {bindings} }} => \
                                 _serde::value::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 _serde::value::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "const _: () = {{\n\
         extern crate serde as _serde;\n\
         impl _serde::Serialize for {name} {{\n\
         fn to_value(&self) -> _serde::value::Value {{ {body} }}\n\
         }}\n\
         }};"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: _serde::Deserialize::from_value(\
                         _serde::field(entries, {f:?}))?"
                    )
                })
                .collect();
            format!(
                "let entries = v.as_map().ok_or_else(|| _serde::Error::new(\
                 ::std::format!(\"expected map for struct {name}, found {{}}\", v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(_serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|k| format!("_serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| _serde::Error::new(\
                 ::std::format!(\"expected sequence for tuple struct {name}, found {{}}\", \
                 v.kind())))?;\n\
                 if items.len() != {arity} {{\n\
                 return ::std::result::Result::Err(_serde::Error::new(::std::format!(\
                 \"tuple struct {name} expects {arity} elements, found {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                        // Tolerate the tagged form `{"Variant": null}` too.
                        tagged_arms.push(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    VariantKind::Newtype => tagged_arms.push(format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         _serde::Deserialize::from_value(payload)?)),"
                    )),
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: _serde::Deserialize::from_value(\
                                     _serde::field(entries, {f:?}))?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vn:?} => {{\n\
                             let entries = payload.as_map().ok_or_else(|| \
                             _serde::Error::new(::std::format!(\
                             \"variant {name}::{vn} expects a map payload, found {{}}\", \
                             payload.kind())))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 _serde::value::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit}\n\
                 other => ::std::result::Result::Err(_serde::Error::new(\
                 ::std::format!(\"unknown unit variant {{other:?}} for enum {name}\"))),\n\
                 }},\n\
                 _serde::value::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                 match tag.as_str() {{\n\
                 {tagged}\n\
                 other => ::std::result::Result::Err(_serde::Error::new(\
                 ::std::format!(\"unknown variant {{other:?}} for enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(_serde::Error::new(\
                 ::std::format!(\"expected variant of enum {name}, found {{}}\", \
                 other.kind()))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "const _: () = {{\n\
         extern crate serde as _serde;\n\
         impl _serde::Deserialize for {name} {{\n\
         fn from_value(v: &_serde::value::Value) \
         -> ::std::result::Result<Self, _serde::Error> {{\n{body}\n}}\n\
         }}\n\
         }};"
    )
}
