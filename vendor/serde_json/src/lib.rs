//! Offline stand-in for `serde_json`.
//!
//! JSON emission and parsing bridged through the vendored `serde`'s
//! [`Value`] model. Emission is deterministic (map order preserved), and
//! floats print in Rust's shortest round-trippable form.

#![forbid(unsafe_code)]

use core::fmt;
use std::iter::Peekable;
use std::str::Chars;

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Error raised by JSON conversion or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` into its [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    Ok(T::from_value(&value)?)
}

fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut chars = text.chars().peekable();
    let value = parse_value(&mut chars)?;
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(value),
        Some(c) => Err(Error::new(format!(
            "trailing character {c:?} after JSON value"
        ))),
    }
}

// ---- emission

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("{f} has no JSON representation")));
            }
            // Rust's float Display is the shortest string that parses back
            // to the same bits; integral floats gain `.0` for clarity.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_bracketed(
            out,
            indent,
            depth,
            '[',
            ']',
            items.iter(),
            |out, item, d| write_value(out, item, indent, d),
        )?,
        Value::Map(entries) => write_bracketed(
            out,
            indent,
            depth,
            '{',
            '}',
            entries.iter(),
            |out, (key, value), d| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, d)
            },
        )?,
    }
    Ok(())
}

fn write_bracketed<I, F>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: F,
) -> Result<(), Error>
where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize) -> Result<(), Error>,
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1)?;
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing

type Cursor<'a> = Peekable<Chars<'a>>;

fn skip_ws(chars: &mut Cursor<'_>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
        chars.next();
    }
}

fn expect(chars: &mut Cursor<'_>, want: char) -> Result<(), Error> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        Some(c) => Err(Error::new(format!("expected {want:?}, found {c:?}"))),
        None => Err(Error::new(format!("expected {want:?}, found end of input"))),
    }
}

fn parse_value(chars: &mut Cursor<'_>) -> Result<Value, Error> {
    skip_ws(chars);
    match chars.peek() {
        Some('{') => parse_map(chars),
        Some('[') => parse_seq(chars),
        Some('"') => Ok(Value::Str(parse_string(chars)?)),
        Some('t') => parse_keyword(chars, "true", Value::Bool(true)),
        Some('f') => parse_keyword(chars, "false", Value::Bool(false)),
        Some('n') => parse_keyword(chars, "null", Value::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars),
        Some(c) => Err(Error::new(format!("unexpected character {c:?}"))),
        None => Err(Error::new("unexpected end of input")),
    }
}

fn parse_keyword(chars: &mut Cursor<'_>, word: &str, value: Value) -> Result<Value, Error> {
    for want in word.chars() {
        expect(chars, want)?;
    }
    Ok(value)
}

fn parse_map(chars: &mut Cursor<'_>) -> Result<Value, Error> {
    expect(chars, '{')?;
    let mut entries = Vec::new();
    skip_ws(chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(Value::Map(entries));
    }
    loop {
        skip_ws(chars);
        let key = parse_string(chars)?;
        skip_ws(chars);
        expect(chars, ':')?;
        let value = parse_value(chars)?;
        entries.push((key, value));
        skip_ws(chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return Ok(Value::Map(entries)),
            other => return Err(Error::new(format!("expected ',' or '}}', found {other:?}"))),
        }
    }
}

fn parse_seq(chars: &mut Cursor<'_>) -> Result<Value, Error> {
    expect(chars, '[')?;
    let mut items = Vec::new();
    skip_ws(chars);
    if chars.peek() == Some(&']') {
        chars.next();
        return Ok(Value::Seq(items));
    }
    loop {
        items.push(parse_value(chars)?);
        skip_ws(chars);
        match chars.next() {
            Some(',') => continue,
            Some(']') => return Ok(Value::Seq(items)),
            other => return Err(Error::new(format!("expected ',' or ']', found {other:?}"))),
        }
    }
}

fn parse_string(chars: &mut Cursor<'_>) -> Result<String, Error> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let c = chars
                            .next()
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        code = code * 16
                            + c.to_digit(16)
                                .ok_or_else(|| Error::new("bad hex in \\u escape"))?;
                    }
                    // Surrogate pairs are unsupported (the workspace never
                    // emits them); map lone surrogates to the replacement
                    // character rather than erroring.
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                other => return Err(Error::new(format!("bad escape {other:?}"))),
            },
            Some(c) => out.push(c),
            None => return Err(Error::new("unterminated string")),
        }
    }
}

fn parse_number(chars: &mut Cursor<'_>) -> Result<Value, Error> {
    let mut text = String::new();
    let mut is_float = false;
    while let Some(&c) = chars.peek() {
        match c {
            '0'..='9' | '-' | '+' => text.push(c),
            '.' | 'e' | 'E' => {
                is_float = true;
                text.push(c);
            }
            _ => break,
        }
        chars.next();
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "\"hi\\n\""] {
            let v = parse_value_str(text).unwrap();
            let emitted = to_string(&v).unwrap();
            assert_eq!(parse_value_str(&emitted).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_roundtrip_compact_and_pretty() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x\"y"}"#;
        let v = parse_value_str(text).unwrap();
        assert_eq!(parse_value_str(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(parse_value_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn map_order_is_preserved() {
        let v = parse_value_str(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1u64, 5, 9];
        let text = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), xs);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value_str("{").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("12 34").is_err());
        assert!(parse_value_str("\"unterminated").is_err());
    }

    // Derive coverage lives here (not in `serde` itself) because the
    // generated code refers to the `serde` crate by name.

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    struct Sample {
        name: String,
        count: u64,
        ratio: f64,
        tags: Vec<String>,
        note: Option<String>,
    }

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq)]
    enum Kind {
        Unit,
        Newtype(u64),
        Struct { a: u64, b: String },
    }

    #[test]
    fn derived_struct_roundtrips_through_json() {
        let s = Sample {
            name: "x\"quoted\"".into(),
            count: 3,
            ratio: 0.25,
            tags: vec!["t".into()],
            note: None,
        };
        let compact = to_string(&s).unwrap();
        assert_eq!(from_str::<Sample>(&compact).unwrap(), s);
        let pretty = to_string_pretty(&s).unwrap();
        assert_eq!(from_str::<Sample>(&pretty).unwrap(), s);
        assert_eq!(s.to_value().get("count"), Some(&Value::Int(3)));
    }

    #[test]
    fn derived_enum_roundtrips_through_json() {
        use serde::{Deserialize, Serialize};
        for k in [
            Kind::Unit,
            Kind::Newtype(8),
            Kind::Struct {
                a: 1,
                b: "z".into(),
            },
        ] {
            let text = to_string(&k).unwrap();
            assert_eq!(from_str::<Kind>(&text).unwrap(), k);
        }
        assert_eq!(Kind::Unit.to_value(), Value::Str("Unit".into()));
        assert!(Kind::from_value(&Value::Str("Nope".into())).is_err());
    }
}
